"""Grandfathering pre-existing lint findings.

The baseline is a checked-in JSON map from finding *fingerprints* to
occurrence counts.  CI fails only on findings beyond the baselined
count, so the lint gate can land with teeth even if the repo were not
yet clean — and tightening it is just deleting entries.

A fingerprint is ``path::rule::stripped-source-line``: stable across
line-number shifts from edits elsewhere in the file, invalidated the
moment the offending line itself changes (which is exactly when a human
should re-justify it).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["DEFAULT_BASELINE_PATH", "fingerprint", "load_baseline",
           "save_baseline", "save_baseline_counts", "to_baseline",
           "filter_new"]

#: The checked-in repo baseline, next to this module.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

_VERSION = 1


def fingerprint(finding):
    """Line-number-independent identity of a finding."""
    return f"{finding.path}::{finding.rule}::{finding.snippet}"


def to_baseline(findings):
    """Serializable baseline document covering ``findings``."""
    counts = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    return {"version": _VERSION,
            "findings": dict(sorted(counts.items()))}


def load_baseline(path=None):
    """Fingerprint->count mapping from ``path`` (default: the checked-in
    baseline).  A missing file is an empty baseline."""
    path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    if not path.exists():
        return {}
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("version") != _VERSION:
        raise ValueError(
            f"baseline {path} has version {document.get('version')!r}; "
            f"this linter reads version {_VERSION}")
    findings = document.get("findings", {})
    return {str(key): int(value) for key, value in findings.items()}


def save_baseline(findings, path=None):
    """Write the baseline covering ``findings`` to ``path`` and return
    the path written."""
    return save_baseline_counts(to_baseline(findings)["findings"],
                                path=path)


def save_baseline_counts(counts, path=None):
    """Write a fingerprint->count mapping as a baseline document —
    the merge-aware form for partial runs, where entries covering
    unscanned files are carried over rather than regenerated."""
    path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    document = {"version": _VERSION,
                "findings": dict(sorted(counts.items()))}
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


def filter_new(findings, baseline):
    """The findings not covered by ``baseline`` counts.

    For each fingerprint the first ``baseline[fp]`` occurrences (in
    file order) are grandfathered; any beyond that are new.
    """
    remaining = dict(baseline)
    new = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    return new
