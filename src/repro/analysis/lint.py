"""The determinism & numerics linter: file walking, noqa, baselines.

Usage (library)::

    from repro.analysis import lint_paths
    result = lint_paths(["src"], baseline=load_baseline())
    for finding in result.new_findings:
        print(finding.location(), finding.message)

Usage (CLI): ``repro lint [--format json] [--baseline]
[--update-baseline] [paths...]`` — see :mod:`repro.cli`.

Suppression: a finding on a line containing ``# repro: noqa[RPRnnn]``
(or a blanket ``# repro: noqa``) is dropped and counted in
``LintResult.suppressed``.  Suppressions are for *intentional*
violations and should carry a nearby comment saying why; accidental
pre-existing findings belong in the baseline instead, which
grandfathers them without touching the offending lines.

This module must stay import-light (stdlib only): ``repro lint`` runs
in CI before anything heavy is warmed up, and the analysis layer must
never be the reason CLI startup slows down.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import filter_new, fingerprint
from .rules import Finding, RuleContext, all_rules

__all__ = ["LintResult", "lint_file", "lint_paths",
           "iter_python_files", "stale_fingerprints"]

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR005]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}

#: Skipped only when they are build artifacts, i.e. not python
#: packages — ``src/repro/dist`` is source and must be scanned.
_ARTIFACT_DIRS = {"build", "dist"}


def _skip_candidate(candidate):
    for index, part in enumerate(candidate.parts[:-1]):
        if part in _SKIP_DIRS:
            return True
        if part in _ARTIFACT_DIRS:
            directory = Path(*candidate.parts[:index + 1])
            if not (directory / "__init__.py").exists():
                return True
    return False


@dataclass
class LintResult:
    """Outcome of one lint run.

    ``findings`` holds every unsuppressed hit; ``new_findings`` is the
    subset not grandfathered by the baseline (identical to ``findings``
    when no baseline was applied).  The lint gate exits nonzero exactly
    when ``new_findings`` is non-empty.
    """

    findings: list = field(default_factory=list)
    new_findings: list = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    parse_errors: int = 0
    #: Baseline fingerprints that no longer match anything: their file
    #: was scanned and has no such finding, or the file is gone.
    #: ``--update-baseline`` prunes them.
    stale_baseline: list = field(default_factory=list)
    #: Display paths of the files this run scanned (fingerprint
    #: prefixes), so callers can merge partial-run baselines.
    scanned_paths: list = field(default_factory=list)

    @property
    def baselined(self):
        """Findings present but grandfathered by the baseline."""
        return len(self.findings) - len(self.new_findings)

    @property
    def clean(self):
        """True when the gate should pass."""
        return not self.new_findings


def iter_python_files(paths):
    """Yield every ``.py`` file under ``paths`` (files pass through),
    sorted, skipping caches and VCS internals."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
        for candidate in candidates:
            if _skip_candidate(candidate):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _display_path(path):
    """Canonical finding path: cwd-relative posix when possible.

    Explicit file arguments (``repro lint ./src/x.py``, absolute
    paths) must fingerprint identically to whole-tree runs, or the
    baseline stops grandfathering them.
    """
    path = Path(path)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _suppressed_codes(line_text):
    """None if the line has no noqa marker; otherwise the frozenset of
    suppressed rule ids (empty frozenset = blanket suppression)."""
    match = _NOQA_RE.search(line_text)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(code.strip() for code in codes.split(",")
                     if code.strip())


def lint_file(path, rules=None, display_path=None):
    """Lint one file; returns ``(findings, suppressed_count)``.

    A file that fails to parse produces a single synthetic ``RPR000``
    error finding rather than crashing the run — a syntax error must
    fail the gate, not the linter.
    """
    path = Path(path)
    display = display_path if display_path is not None \
        else path.as_posix()
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule="RPR000", severity="error", path=display,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error", snippet=(exc.text or "").strip())
        return [finding], 0

    ctx = RuleContext(path=display, tree=tree, lines=lines)
    findings = []
    suppressed = 0
    for rule in (rules if rules is not None else all_rules()):
        for finding in rule.findings(ctx):
            codes = _suppressed_codes(ctx.line_text(finding.line))
            if codes is not None and (not codes or finding.rule in codes):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings, suppressed


def lint_paths(paths, rules=None, baseline=None):
    """Lint every python file under ``paths``.

    Parameters
    ----------
    paths:
        Files or directories to scan.
    rules:
        Rule instances to run (default: every registered rule).
    baseline:
        Baseline mapping from :func:`~repro.analysis.baseline.
        load_baseline`; when given, ``new_findings`` excludes
        grandfathered hits.  ``None`` disables baselining.
    """
    rules = list(rules) if rules is not None else all_rules()
    result = LintResult()
    scanned_paths = set()
    for path in iter_python_files(paths):
        display = _display_path(path)
        scanned_paths.add(display)
        findings, suppressed = lint_file(path, rules=rules,
                                         display_path=display)
        result.files_scanned += 1
        result.suppressed += suppressed
        result.findings.extend(findings)
        result.parse_errors += sum(1 for f in findings
                                   if f.rule == "RPR000")
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.scanned_paths = sorted(scanned_paths)
    if baseline is not None:
        result.new_findings = filter_new(result.findings, baseline)
        result.stale_baseline = stale_fingerprints(
            result.findings, baseline, scanned_paths)
    else:
        result.new_findings = list(result.findings)
    return result


def stale_fingerprints(findings, baseline, scanned_paths):
    """Baseline entries that no longer match any finding.

    An entry is stale when its file was scanned in this run and the
    fingerprint matched nothing, or when the file no longer exists.
    Entries for unscanned-but-existing files are *not* stale — a
    partial run (explicit file arguments) must not condemn the rest of
    the baseline.
    """
    current = {fingerprint(finding) for finding in findings}
    stale = []
    for key in sorted(baseline):
        if key in current:
            continue
        path = key.split("::", 1)[0]
        if path in scanned_paths or not Path(path).exists():
            stale.append(key)
    return stale
