"""The checked-in architectural contract (``layers.toml``).

The contract declares the layered package DAG (ARC001) plus per-rule
scoping for the other architectural rules.  It is parsed with a small
TOML-subset reader rather than :mod:`tomllib` because CI still runs
Python 3.10; the subset covers exactly what the contract needs —
``[table]``, ``[[array-of-tables]]``, string/int/bool values, and
(possibly multi-line) arrays of strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ArchConfig", "DEFAULT_LAYERS_PATH", "load_arch_config",
           "parse_toml"]

#: The checked-in contract, next to this module.
DEFAULT_LAYERS_PATH = Path(__file__).resolve().parent / "layers.toml"


# ----------------------------------------------------------------------
# Minimal TOML-subset parser
# ----------------------------------------------------------------------
def _strip_comment(line):
    """Drop a ``#`` comment, respecting string quotes."""
    out = []
    quote = None
    for ch in line:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _parse_scalar(text):
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"unsupported TOML value: {text!r}")


def _split_items(text):
    """Split a bracketless array body on top-level commas."""
    items, depth, quote, current = [], 0, None, []
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


def _parse_value(text):
    text = text.strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise ValueError(f"unterminated array: {text!r}")
        return [_parse_value(item)
                for item in _split_items(text[1:-1])]
    return _parse_scalar(text)


def _bracket_balance(text):
    depth, quote = 0, None
    for ch in text:
        if quote:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
    return depth


def parse_toml(text):
    """Parse the TOML subset described in the module docstring into
    nested dicts (array-of-tables become lists of dicts)."""
    root = {}
    table = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            keys = line[2:-2].strip().split(".")
            parent = root
            for key in keys[:-1]:
                parent = parent.setdefault(key, {})
            entries = parent.setdefault(keys[-1], [])
            if not isinstance(entries, list):
                raise ValueError(f"{keys[-1]} is not array-of-tables")
            table = {}
            entries.append(table)
            continue
        if line.startswith("[") and line.endswith("]"):
            keys = line[1:-1].strip().split(".")
            parent = root
            for key in keys[:-1]:
                parent = parent.setdefault(key, {})
            table = parent.setdefault(keys[-1], {})
            continue
        if "=" not in line:
            raise ValueError(f"unsupported TOML line: {line!r}")
        key, _, value = line.partition("=")
        value = value.strip()
        # Multi-line array: keep consuming until brackets balance.
        while _bracket_balance(value) > 0:
            if index >= len(lines):
                raise ValueError(f"unterminated array for {key.strip()}")
            value += " " + _strip_comment(lines[index])
            index += 1
        table[key.strip()] = _parse_value(value)
    return root


# ----------------------------------------------------------------------
# The contract
# ----------------------------------------------------------------------
@dataclass
class ArchConfig:
    """Parsed ``layers.toml``: layer levels plus per-rule options."""

    levels: dict = field(default_factory=dict)   #: package -> level
    layer_names: dict = field(default_factory=dict)  #: package -> layer
    rules: dict = field(default_factory=dict)    #: "ARCnnn" -> options
    path: str = ""

    def level_of(self, package):
        """Declared level of ``package``, or None if undeclared."""
        return self.levels.get(package)

    def rule(self, code):
        """Options table for ``code`` (empty dict if absent)."""
        return self.rules.get(code, {})

    def allowed_pairs(self):
        """Sanctioned same-level cross-package imports, as a set of
        ``(src, dst)`` tuples."""
        pairs = set()
        for entry in self.rule("ARC001").get("allowed", []):
            src, _, dst = entry.partition("->")
            pairs.add((src.strip(), dst.strip()))
        return pairs


def load_arch_config(path=None):
    """Read and validate the contract at ``path`` (default: the
    checked-in ``layers.toml``)."""
    path = Path(path) if path is not None else DEFAULT_LAYERS_PATH
    document = parse_toml(path.read_text(encoding="utf-8"))
    config = ArchConfig(path=path.as_posix())
    for layer in document.get("layer", []):
        name = layer.get("name")
        level = layer.get("level")
        if name is None or not isinstance(level, int):
            raise ValueError(
                f"{path}: every [[layer]] needs a name and an int level")
        for package in layer.get("packages", []):
            if package in config.levels:
                raise ValueError(
                    f"{path}: package {package!r} declared twice")
            config.levels[package] = level
            config.layer_names[package] = name
    config.rules = document.get("rules", {})
    return config
