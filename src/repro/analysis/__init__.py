"""Static analysis & runtime sanitizers for the reproduction.

Two halves of one correctness story:

* the **linter** (:mod:`~repro.analysis.lint`,
  :mod:`~repro.analysis.rules`) machine-checks the determinism
  invariants every numeric claim rests on — seeded RNG streams, no
  wall-clock in simulated paths, no iteration-order-dependent
  accumulation, hygiene rules that keep failures loud; and
* the **sanitizers** (:mod:`~repro.analysis.sanitize`) catch the
  corresponding *runtime* corruption — NaN/Inf in activations and
  gradients, malformed CSR structures, broken shape/dtype contracts —
  behind the zero-cost-when-off ``FLAGS.sanitize`` toggle.

A third, whole-program half rides on the same machinery: the
**architectural analyzer** (:mod:`~repro.analysis.arch`,
:mod:`~repro.analysis.graphing`, :mod:`~repro.analysis.rules.arch`)
parses all of ``src/repro`` once into a project graph and enforces the
checked-in contract in ``layers.toml`` — layering, kernel-seam and
billing-seam usage, simulated-clock purity, RNG provenance, and
public-API drift (``repro arch-lint``).

This package stays import-light by design (stdlib ``ast`` + numpy +
the flags/errors modules): ``repro lint`` must not pay for scipy or the
training stack, and importing :mod:`repro` must not pay for the linter.
The hot paths import :mod:`~repro.analysis.sanitize` directly, and this
``__init__`` resolves the linter names lazily (PEP 562), so ``import
repro`` never executes ``lint``/``rules``/``report``/``baseline``.
"""

import importlib

__all__ = [
    "Finding", "Rule", "all_rules", "rule_table",
    "LintResult", "lint_file", "lint_paths", "iter_python_files",
    "DEFAULT_BASELINE_PATH", "load_baseline", "save_baseline",
    "to_baseline", "filter_new",
    "REPORT_VERSION", "render_json", "render_text", "write_json",
    "check_finite", "check_csr", "check_contract", "sanitize_active",
    "arch_lint", "load_arch_baseline", "DEFAULT_ARCH_BASELINE_PATH",
    "ProjectGraph", "build_project",
    "ArchConfig", "DEFAULT_LAYERS_PATH", "load_arch_config",
]

# name -> defining submodule, resolved on first attribute access.
_LAZY = {
    "DEFAULT_BASELINE_PATH": "baseline", "filter_new": "baseline",
    "load_baseline": "baseline", "save_baseline": "baseline",
    "to_baseline": "baseline",
    "LintResult": "lint", "iter_python_files": "lint",
    "lint_file": "lint", "lint_paths": "lint",
    "REPORT_VERSION": "report", "render_json": "report",
    "render_text": "report", "write_json": "report",
    "Finding": "rules", "Rule": "rules", "all_rules": "rules",
    "rule_table": "rules",
    "check_contract": "sanitize", "check_csr": "sanitize",
    "check_finite": "sanitize", "sanitize_active": "sanitize",
    "DEFAULT_ARCH_BASELINE_PATH": "arch", "arch_lint": "arch",
    "load_arch_baseline": "arch",
    "ProjectGraph": "graphing", "build_project": "graphing",
    "ArchConfig": "layers", "DEFAULT_LAYERS_PATH": "layers",
    "load_arch_config": "layers",
}


def __getattr__(name):
    try:
        submodule = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module("." + submodule, __name__),
                    name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
