"""The whole-program architectural analyzer (``repro arch-lint``).

Parses all of ``src/repro`` once into a
:class:`~repro.analysis.graphing.ProjectGraph`, loads the checked-in
contract (``layers.toml``), runs the ARC rules, and reuses the per-file
linter's machinery end-to-end: ``# repro: noqa[ARCnnn]`` inline
suppression, fingerprint-keyed baseline grandfathering
(``arch_baseline.json``), :class:`~repro.analysis.lint.LintResult`,
and the text/JSON reporters.

Usage (library)::

    from repro.analysis import arch_lint
    result = arch_lint()
    assert result.clean

Usage (CLI): ``repro arch-lint [--format json] [--baseline]
[--update-baseline] [root]`` — see :mod:`repro.cli`.

Like the rest of the analysis package this must stay import-light
(stdlib only) and must never run on ``import repro``.
"""

from __future__ import annotations

from pathlib import Path

from .baseline import filter_new, load_baseline
from .graphing import build_project
from .layers import load_arch_config
from .lint import LintResult, _suppressed_codes
from .rules import Finding
from .rules.arch import arch_rules

__all__ = ["DEFAULT_ARCH_BASELINE_PATH", "DEFAULT_ROOT", "arch_lint",
           "default_root", "load_arch_baseline"]

#: The checked-in arch baseline, next to this module.
DEFAULT_ARCH_BASELINE_PATH = (Path(__file__).resolve().parent
                              / "arch_baseline.json")

#: The package this analyzer was built to police: its own source tree.
DEFAULT_ROOT = Path(__file__).resolve().parents[1]


def default_root():
    """The package root to analyze when none is given: ``src/repro``
    relative to the working directory if present (so display paths
    match the repo layout CI and baselines use), else the installed
    package directory."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return candidate
    return DEFAULT_ROOT


def load_arch_baseline(path=None):
    """Fingerprint->count mapping for the arch pass (default: the
    checked-in ``arch_baseline.json``)."""
    return load_baseline(path if path is not None
                         else DEFAULT_ARCH_BASELINE_PATH)


def arch_lint(root=None, config_path=None, baseline=None, rules=None,
              package=None):
    """Run the architectural rules over the project at ``root``.

    Parameters
    ----------
    root:
        Package source directory (default: :func:`default_root`).
    config_path:
        ``layers.toml`` to enforce (default: the checked-in contract).
    baseline:
        Fingerprint->count mapping; ``None`` disables grandfathering.
    rules:
        :class:`~repro.analysis.rules.arch.ArchRule` instances to run
        (default: every registered ARC rule).
    package:
        Dotted name of the root package (default: ``root``'s name).

    Returns the same :class:`~repro.analysis.lint.LintResult` shape as
    the per-file linter, so the reporters and the CLI gate apply
    unchanged.
    """
    root = Path(root) if root is not None else default_root()
    graph = build_project(root, package=package)
    config = load_arch_config(config_path)
    result = LintResult()
    result.files_scanned = len(graph.modules) + len(graph.parse_errors)

    findings = []
    for display, exc in graph.parse_errors:
        result.parse_errors += 1
        findings.append(Finding(
            rule="ARC000", severity="error", path=display,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error",
            snippet=(exc.text or "").strip()))

    active = list(rules) if rules is not None else arch_rules()
    by_path = {info.path: info for info in graph.modules.values()}
    for rule in active:
        for finding in rule.findings(graph, config):
            info = by_path.get(finding.path)
            text = info.line_text(finding.line) if info else ""
            codes = _suppressed_codes(text)
            if codes is not None and (not codes
                                      or finding.rule in codes):
                result.suppressed += 1
            else:
                findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.findings = findings
    if baseline is not None:
        result.new_findings = filter_new(findings, baseline)
    else:
        result.new_findings = list(findings)
    return result
