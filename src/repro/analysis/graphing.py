"""Whole-program symbol table, import graph, and approximate call graph.

The per-file rules (:mod:`repro.analysis.rules`) see one AST at a time;
the architectural rules (:mod:`repro.analysis.rules.arch`) need the
*project*: which package imports which, where a name is defined, and
what is reachable from an event loop.  This module parses every file
under a package root once and answers those questions — module-level
name resolution over the AST, no execution — so later whole-program
rules are ~50-line visitors over a prebuilt :class:`ProjectGraph`.

Resolution is deliberately approximate and documented as such:

* imports (absolute and relative) resolve to project modules exactly;
* ``name(...)`` calls resolve through module-level imports and defs;
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class and
  its statically-resolvable bases;
* ``ClassName(...)`` resolves to ``ClassName.__init__``;
* other attribute calls (``obj.m()``) resolve only when exactly one
  function in the whole project is named ``m`` — ambiguous names stay
  unresolved rather than guessing.

Unresolved calls never extend reachability; the rules built on top are
therefore conservative in what they *prove* reachable, which is the
right direction for a gate (a missed edge is a missed finding, not a
false alarm).

This module must stay import-light (stdlib only): it runs in CI before
anything heavy is warmed up.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .rules import dotted_name

__all__ = ["ModuleInfo", "ImportEdge", "FunctionInfo", "CallSite",
           "ProjectGraph", "build_project"]

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}

#: Names the unique-tail call fallback must never follow: methods of
#: builtin containers/strings (``token.partition(...)`` is
#: ``str.partition``, not a project function that happens to share the
#: name) plus the common ndarray methods, since numpy itself is not
#: parsed into the project graph.
_BUILTIN_METHOD_NAMES = frozenset(
    name for obj in (str, bytes, dict, list, set, tuple, frozenset)
    for name in dir(obj) if not name.startswith("_")
) | frozenset({
    "sum", "mean", "max", "min", "item", "astype", "reshape",
    "ravel", "tolist", "argsort", "clip", "take", "fill", "dot",
    "cumsum", "nonzero", "any", "all", "round", "std", "var",
    "searchsorted", "repeat", "flatten", "squeeze", "view",
})


@dataclass
class ImportEdge:
    """One import statement, resolved to an absolute dotted target."""

    source: str            #: importing module (dotted)
    target: str            #: imported module (dotted, best effort)
    names: list            #: [(name, bound-as)] for ``from X import a``
    lineno: int
    col: int
    lazy: bool             #: inside a function body (deferred import)
    node: ast.AST = field(repr=False, default=None)


@dataclass
class CallSite:
    """One call expression inside a function (or module) body."""

    dotted: str            #: ``a.b.c`` for the callee, or None
    tail: str              #: final name component (for fallback lookup)
    node: ast.AST = field(repr=False, default=None)


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str          #: ``repro.fleet.engine.FleetEngine._run``
    module: str
    name: str
    class_name: str        #: enclosing class, or None
    node: ast.AST = field(repr=False, default=None)
    calls: list = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Everything the project graph knows about one parsed module."""

    name: str              #: dotted module name (``repro.fleet.engine``)
    path: str              #: display path (posix, repo-relative)
    package: str           #: first component under the root package
    tree: ast.AST = field(repr=False, default=None)
    lines: list = field(default_factory=list, repr=False)
    #: module-level bindings: name -> ("function"|"class", node) |
    #: ("module", target) | ("object", "target.attr") |
    #: ("assign", value-node)
    symbols: dict = field(default_factory=dict, repr=False)
    #: class name -> {method name -> FunctionInfo}
    classes: dict = field(default_factory=dict, repr=False)
    #: class name -> [base-name expressions (dotted strings)]
    bases: dict = field(default_factory=dict, repr=False)

    def line_text(self, lineno):
        """Stripped source text of physical line ``lineno`` (1-based)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class ProjectGraph:
    """Parsed project: modules, imports, symbols, approximate calls."""

    def __init__(self, package):
        self.package = package
        self.modules = {}        #: dotted name -> ModuleInfo
        self.imports = []        #: [ImportEdge]
        self.functions = {}      #: qualname -> FunctionInfo
        self.parse_errors = []   #: [(display path, SyntaxError)]
        self._by_tail = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def package_of(self, module_name):
        """The layering unit of ``module_name``: its first component
        under the root package, or the bare module name for top-level
        modules (``cli``, ``errors``) and the root ``__init__``."""
        parts = module_name.split(".")
        if parts[0] != self.package:
            return parts[0]
        if len(parts) == 1:
            return self.package
        child = parts[1]
        info = self.modules.get(f"{self.package}.{child}")
        if info is not None and len(parts) == 2 \
                and not info.path.endswith("__init__.py"):
            return child          # top-level module, its own unit
        return child

    def project_imports(self, include_lazy=False):
        """Import edges whose source and target are both project
        modules (targets resolved to the nearest known module)."""
        for edge in self.imports:
            if edge.lazy and not include_lazy:
                continue
            target = self.resolve_module(edge.target)
            if target is not None:
                yield edge, target

    def resolve_module(self, dotted):
        """The longest known module prefix of ``dotted``, or None."""
        parts = dotted.split(".")
        while parts:
            name = ".".join(parts)
            if name in self.modules:
                return name
            parts.pop()
        return None

    def functions_of_class(self, class_qualname):
        """Every method of ``module.Class`` (empty list if unknown)."""
        module, _, cls = class_qualname.rpartition(".")
        info = self.modules.get(module)
        if info is None or cls not in info.classes:
            return []
        return list(info.classes[cls].values())

    def _tail_index(self):
        if self._by_tail is None:
            index = {}
            for fn in self.functions.values():
                index.setdefault(fn.name, []).append(fn)
            self._by_tail = index
        return self._by_tail

    # ------------------------------------------------------------------
    # Name/call resolution
    # ------------------------------------------------------------------
    def resolve_symbol(self, module_name, name):
        """Module-level binding of ``name`` in ``module_name``,
        followed through one from-import: returns ``(kind, payload,
        home-module)`` or None."""
        info = self.modules.get(module_name)
        if info is None or name not in info.symbols:
            return None
        kind, payload = info.symbols[name]
        if kind == "object":
            target_module, _, target_name = payload.rpartition(".")
            home = self.resolve_module(target_module)
            if home is not None:
                # ``from X import a`` where X is a package may bind a
                # *submodule* rather than an object.
                if f"{home}.{target_name}" in self.modules \
                        and home == target_module:
                    return ("module", f"{home}.{target_name}",
                            module_name)
                target = self.modules[home].symbols.get(target_name)
                if target is not None and target[0] != "object":
                    return (target[0], target[1], home)
            return (kind, payload, module_name)
        return (kind, payload, module_name)

    def resolve_call(self, module_name, call, class_name=None):
        """The :class:`FunctionInfo` a call site dispatches to, or
        None when static resolution fails."""
        dotted = call.dotted
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and class_name and len(parts) == 2:
            return self._resolve_method(module_name, class_name,
                                        parts[1], set())
        resolved = self.resolve_symbol(module_name, parts[0])
        if resolved is None:
            return None
        kind, payload, home = resolved
        if kind == "function" and len(parts) == 1:
            return self.functions.get(f"{home}.{dotted}")
        if kind == "class":
            cls = payload.name if isinstance(payload, ast.ClassDef) \
                else parts[0]
            if len(parts) == 1:       # ClassName() -> __init__
                init = self.functions.get(f"{home}.{cls}.__init__")
                return init
            if len(parts) == 2:       # ClassName.method
                return self._resolve_method(home, cls, parts[1], set())
        if kind == "module" and len(parts) >= 2:
            target = self.resolve_module(payload)
            if target is None:
                return None
            sub = CallSite(".".join(parts[1:]), parts[-1])
            return self.resolve_call(target, sub)
        return None

    def _resolve_method(self, module_name, class_name, method, seen):
        """``method`` on ``class_name`` (following statically-known
        bases, cycle-safe)."""
        if (module_name, class_name) in seen:
            return None
        seen.add((module_name, class_name))
        info = self.modules.get(module_name)
        if info is None:
            return None
        methods = info.classes.get(class_name, {})
        if method in methods:
            return methods[method]
        for base in info.bases.get(class_name, []):
            resolved = self.resolve_symbol(module_name,
                                           base.split(".")[0])
            if resolved is None:
                continue
            kind, payload, home = resolved
            if kind == "class":
                base_cls = payload.name \
                    if isinstance(payload, ast.ClassDef) else base
                found = self._resolve_method(home, base_cls, method,
                                             seen)
                if found is not None:
                    return found
        return None

    def reachable(self, roots):
        """Qualnames of every function reachable from ``roots``.

        Each root may be a function qualname or a class qualname (all
        of its methods become roots).  Edges follow resolved calls plus
        the unique-tail fallback described in the module docstring.
        """
        frontier = []
        for root in roots:
            if root in self.functions:
                frontier.append(root)
            else:
                frontier.extend(fn.qualname
                                for fn in self.functions_of_class(root))
        seen = set()
        tails = self._tail_index()
        while frontier:
            qualname = frontier.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            fn = self.functions[qualname]
            for call in fn.calls:
                target = self.resolve_call(fn.module, call,
                                           class_name=fn.class_name)
                if target is None and call.tail \
                        and call.tail not in _BUILTIN_METHOD_NAMES:
                    candidates = tails.get(call.tail, [])
                    if len(candidates) == 1:
                        target = candidates[0]
                if target is not None and target.qualname not in seen:
                    frontier.append(target.qualname)
        return seen


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def _module_name(root, path, package):
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]
    return ".".join([package] + parts)


def _display_path(path):
    path = Path(path)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _resolve_relative(module_name, is_package, level, target):
    """Absolute dotted target of a level-``level`` relative import
    found in ``module_name``."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


class _ModuleVisitor(ast.NodeVisitor):
    """Single pass over one module collecting symbols, imports, and
    per-function call sites."""

    def __init__(self, graph, info, is_package):
        self.graph = graph
        self.info = info
        self.is_package = is_package
        self.class_stack = []
        self.function_stack = []
        # Module-level statements execute in an implicit function.
        self.module_body = FunctionInfo(
            qualname=f"{info.name}.<module>", module=info.name,
            name="<module>", class_name=None, node=info.tree)
        graph.functions[self.module_body.qualname] = self.module_body

    # -- imports -------------------------------------------------------
    def _add_edge(self, target, names, node):
        self.graph.imports.append(ImportEdge(
            source=self.info.name, target=target, names=names,
            lineno=node.lineno, col=node.col_offset,
            lazy=bool(self.function_stack), node=node))

    def visit_Import(self, node):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self._add_edge(alias.name, [(alias.name, bound)], node)
            if not self.function_stack and not self.class_stack:
                self.info.symbols.setdefault(
                    bound, ("module", alias.name if alias.asname
                            else alias.name.split(".")[0]))

    def visit_ImportFrom(self, node):
        if node.level:
            target = _resolve_relative(self.info.name, self.is_package,
                                       node.level, node.module or "")
        else:
            target = node.module or ""
        names = [(alias.name, alias.asname or alias.name)
                 for alias in node.names]
        self._add_edge(target, names, node)
        if not self.function_stack and not self.class_stack:
            for name, bound in names:
                if name == "*":
                    continue
                self.info.symbols.setdefault(
                    bound, ("object", f"{target}.{name}"))

    # -- definitions ---------------------------------------------------
    def _enter_function(self, node):
        cls = self.class_stack[-1] if self.class_stack else None
        prefix = f"{self.info.name}." + (f"{cls}." if cls else "")
        fn = FunctionInfo(qualname=prefix + node.name,
                          module=self.info.name, name=node.name,
                          class_name=cls, node=node)
        # Nested functions fold into their parent's call record; only
        # top-of-class/module functions are addressable.
        if not self.function_stack:
            self.graph.functions.setdefault(fn.qualname, fn)
            if cls:
                self.info.classes.setdefault(cls, {}) \
                    .setdefault(node.name, fn)
            elif not self.class_stack:
                self.info.symbols.setdefault(node.name,
                                             ("function", node))
            self.function_stack.append(fn)
        else:
            self.function_stack.append(self.function_stack[-1])
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.function_stack.pop()

    def visit_FunctionDef(self, node):
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node):
        self._enter_function(node)

    def visit_ClassDef(self, node):
        if not self.class_stack and not self.function_stack:
            self.info.symbols.setdefault(node.name, ("class", node))
            self.info.classes.setdefault(node.name, {})
            self.info.bases[node.name] = [
                name for name in (dotted_name(base)
                                  for base in node.bases)
                if name is not None]
        self.class_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.class_stack.pop()

    def visit_Assign(self, node):
        if not self.function_stack and not self.class_stack:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.info.symbols.setdefault(
                        target.id, ("assign", node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if not self.function_stack and not self.class_stack \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            self.info.symbols.setdefault(node.target.id,
                                         ("assign", node.value))
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node):
        dotted = dotted_name(node.func)
        if isinstance(node.func, ast.Attribute):
            tail = node.func.attr
        elif isinstance(node.func, ast.Name):
            tail = node.func.id
        else:
            tail = None
        owner = self.function_stack[-1] if self.function_stack \
            else self.module_body
        owner.calls.append(CallSite(dotted=dotted, tail=tail,
                                    node=node))
        self.generic_visit(node)


def build_project(root, package=None):
    """Parse every ``.py`` file under ``root`` into a
    :class:`ProjectGraph`.

    ``root`` is the package source directory (e.g. ``src/repro``);
    ``package`` defaults to its directory name.  Files that fail to
    parse are recorded in ``ProjectGraph.parse_errors`` instead of
    aborting the build.
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"package root does not exist: {root}")
    package = package or root.name
    graph = ProjectGraph(package)
    for path in sorted(root.rglob("*.py")):
        if _SKIP_DIRS.intersection(path.parts):
            continue
        display = _display_path(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            graph.parse_errors.append((display, exc))
            continue
        name = _module_name(root, path, package)
        info = ModuleInfo(name=name, path=display,
                          package=None, tree=tree,
                          lines=source.splitlines())
        graph.modules[name] = info
        visitor = _ModuleVisitor(graph, info,
                                 path.name == "__init__.py")
        visitor.visit(tree)
    for info in graph.modules.values():
        info.package = graph.package_of(info.name)
    return graph
