"""repro — reproduction of "Comprehensive Evaluation of GNN Training
Systems: A Data Management Perspective" (VLDB 2024).

The library implements every data-management technique the paper
evaluates — six graph partitioners, five sampler families, two batch
selection policies and the adaptive batch-size schedule, three CPU→GPU
transfer methods, pipelining, and two GPU cache policies — on top of
from-scratch substrates: a CSR graph store with synthetic stand-ins for
the paper's nine datasets, a numpy autograd GNN engine (GCN/GraphSAGE),
and a simulated CPU/GPU/PCIe/network cluster cost model.

Quickstart::

    from repro import load_dataset, TrainingConfig, Trainer

    dataset = load_dataset("ogb-arxiv")
    result = Trainer(dataset, TrainingConfig(partitioner="metis-ve",
                                             batch_size=512)).run()
    print(result.best_val_accuracy, result.mean_epoch_seconds)
"""

from .core import (Trainer, TrainingConfig, TrainingResult,
                   adaptive_batch_training, compare_partitioners,
                   evaluate_model, make_partitioner, make_sampler, sweep)
from .errors import (AdmissionError, CheckpointError, DatasetError,
                     FaultError, GraphError, PartitionError, ReproError,
                     SamplingError, ServingError, TrainingError,
                     TransferError)
from .faults import Checkpointer, FaultInjector, FaultPlan, RetryPolicy
from .graph import CSRGraph, Dataset, dataset_names, load_dataset
from .partition import all_partitioners, measure_workload
from .perf import FLAGS, PERF, perf_overrides
from .sampling import (HybridSampler, LayerWiseSampler, NeighborSampler,
                       RateSampler, SubgraphSampler)
from .serve import (BatchPolicy, LayerwiseEmbeddings, LoadGenerator,
                    MicroBatcher, ServeEngine, ServeReport)
from .tasks import train_link_prediction
from .transfer import DEFAULT_SPEC, HardwareSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Trainer", "TrainingConfig", "TrainingResult", "evaluate_model",
    "adaptive_batch_training", "compare_partitioners", "sweep",
    "make_partitioner", "make_sampler",
    "CSRGraph", "Dataset", "load_dataset", "dataset_names",
    "all_partitioners", "measure_workload",
    "NeighborSampler", "RateSampler", "HybridSampler", "LayerWiseSampler",
    "SubgraphSampler",
    "HardwareSpec", "DEFAULT_SPEC", "train_link_prediction",
    "FLAGS", "PERF", "perf_overrides",
    "LoadGenerator", "BatchPolicy", "MicroBatcher", "ServeEngine",
    "ServeReport", "LayerwiseEmbeddings",
    "FaultPlan", "FaultInjector", "RetryPolicy", "Checkpointer",
    "ReproError", "GraphError", "PartitionError", "SamplingError",
    "TrainingError", "TransferError", "DatasetError",
    "ServingError", "AdmissionError", "FaultError", "CheckpointError",
]
