"""The sharded serving fleet: N replicas, one shard each, one router.

:class:`FleetEngine` generalizes the single-server
:class:`~repro.serve.engine.ServeEngine` queueing simulation to a
multi-replica discrete-event loop:

* each replica owns one shard of a :mod:`repro.partition` result and
  runs its own :class:`~repro.serve.batcher.MicroBatcher` +
  :class:`~repro.fleet.replica.ShardExecutor` (remote rows billed over
  the network);
* the :class:`~repro.fleet.router.Router` sends every request to the
  owner of its seed vertex, spilling/failing over by penalized queue
  depth;
* optional queue-depth autoscaling
  (:class:`~repro.fleet.router.Autoscaler`) and crash faults (queued
  requests of a dead replica are re-routed after a
  :class:`~repro.faults.RetryPolicy` detection timeout — the serving
  reuse of the training stack's fault model);
* an optional resilience layer (:mod:`repro.fleet.resilience`):
  phi-accrual failure detection re-routing orphans at *suspicion* time
  (~1 ms) instead of the 10 ms retry timeout, per-replica circuit
  breakers, p95-delay hedged requests with first-response-wins
  cancellation, per-request retry budgets, k-replicated shard
  ownership (``replication=k``), checkpointed cache recovery, and
  straggler/slowlink windows from a :class:`FleetSchedule`.  Every
  mechanism defaults off, and the off path is bit-identical to the
  baseline engine.

Everything runs on the simulated clock; the loop's event order —
faults, then arrivals/re-submissions, then dispatches, at equal times
— makes a 1-replica fleet reproduce ``ServeEngine``'s batch sequence
exactly.  Answers in ``precomputed`` mode are row-wise
(:meth:`~repro.serve.precompute.LayerwiseEmbeddings.rowwise_logits`)
and therefore *bit-identical* to the single server's for the same
trace, regardless of how routing re-batched the requests — the
fleet-vs-single-server invariant the benchmark asserts.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.config import make_partitioner
from ..errors import FleetError, ServingError
from ..faults.retry import RetryPolicy
from ..partition.base import PartitionResult
from ..partition.replication import k_redundant_replication
from ..perf import PERF, StageProfiler
from ..perf.profiler import percentile
from ..serve.batcher import BatchPolicy
from ..serve.executor import SERVE_MODES
from ..serve.precompute import LayerwiseEmbeddings
from ..transfer.hardware import DEFAULT_SPEC
from ..transfer.tiered import TieredCache
from .metrics import FleetReport, _latency_fields
from .replica import ReplicaServer, ShardExecutor
from .resilience import (CircuitBreaker, FailureDetector, FleetSchedule,
                         ReplicaRecovery, ResiliencePolicy)
from .router import Autoscaler, Router
from .shards import ShardMap

__all__ = ["FleetEngine"]


class FleetEngine:
    """Multi-replica online inference over one partitioned graph.

    Parameters
    ----------
    dataset, model:
        As in :class:`~repro.serve.engine.ServeEngine`.
    partition:
        Either a :class:`~repro.partition.base.PartitionResult` (its
        part count fixes the fleet size) or a partitioner name from
        :func:`~repro.core.config.make_partitioner` ("hash",
        "metis-v", ...), in which case ``num_replicas`` is required and
        the partition is computed here.
    num_replicas:
        Fleet size; only needed (and then required) when ``partition``
        is a name.
    mode, policy, max_queue, fanout, cache_policy, cache_ratio,
    warm_ratio, cache_scores, spec, seed, embeddings:
        As in ``ServeEngine`` — applied per replica (each replica gets
        its own cache with the same budgets; ``cache_ratio`` remains a
        fraction of the *full* row universe).  A precomputed/full
        embedding table is built once and shared by every replica.
    routing:
        A :class:`~repro.fleet.router.RoutingPolicy` (default:
        owner-first, no spillover).
    autoscale:
        Optional :class:`~repro.fleet.router.AutoscalePolicy`; when
        given, replicas beyond ``min_replicas`` start deactivated and
        the queue-depth signal drives the active set.
    crashes:
        Crash-fault schedule: iterable of ``(time, replica_id,
        down_seconds)`` triples.  A crashed replica's queued requests
        are re-routed after ``retry.timeout`` simulated seconds (the
        failure-detection delay) — or at the failure detector's
        *suspicion* instant when ``resilience`` wires one in — and it
        rejoins, empty-queued, at ``time + down_seconds``.
    retry:
        The :class:`~repro.faults.RetryPolicy` whose ``timeout`` models
        failure detection; default :class:`RetryPolicy()`.
    resilience:
        Optional :class:`~repro.fleet.resilience.ResiliencePolicy`
        bundling the failure detector, circuit breakers, hedging, and
        the retry budget.  ``None`` (default) is the PR 7 baseline,
        bit for bit.
    schedule:
        Optional :class:`~repro.fleet.resilience.FleetSchedule` (or a
        ``faults.plan`` spec string / :class:`FaultPlan`): its crash
        events merge with ``crashes`` and its straggler/slowlink
        windows scale dispatch service times.
    recovery:
        Optional :class:`~repro.fleet.resilience.ReplicaRecovery` (or
        a directory path): snapshots every replica's tiered cache on a
        cadence; a crash then cold-starts the cache and recovery
        re-warms it from the newest valid snapshot.
    replication:
        Optional redundancy factor ``k``: the partition is extended via
        :func:`~repro.partition.replication.k_redundant_replication`
        so every vertex has a primary + ``k-1`` backups and the router
        fails over to a backup holder (which serves from its local
        copy) the moment the owner is unavailable.  ``k=1`` (or
        ``None``) keeps single ownership.
    """

    def __init__(self, dataset, model, partition="metis-v",
                 num_replicas=None, mode="precomputed", policy=None,
                 max_queue=None, fanout=(10, 10), cache_policy="lru",
                 cache_ratio=0.0, warm_ratio=0.0, cache_scores=None,
                 spec=None, seed=0, embeddings=None, routing=None,
                 autoscale=None, crashes=(), retry=None,
                 resilience=None, schedule=None, recovery=None,
                 replication=None):
        if mode not in SERVE_MODES:
            raise ServingError(
                f"unknown serve mode {mode!r}; known: {SERVE_MODES}")
        if isinstance(partition, PartitionResult):
            if num_replicas is not None \
                    and num_replicas != partition.num_parts:
                raise FleetError(
                    f"num_replicas={num_replicas} but the partition "
                    f"has {partition.num_parts} parts")
        else:
            if num_replicas is None:
                raise FleetError(
                    "num_replicas is required when partition is a "
                    "method name")
            partition = make_partitioner(partition).partition(
                dataset.graph, num_replicas, split=dataset.split,
                rng=np.random.default_rng(int(seed)))
        if replication is not None:
            if not 1 <= int(replication) <= partition.num_parts:
                raise FleetError(
                    f"replication must be in [1, {partition.num_parts}]"
                    f" (the fleet size), got {replication}")
            if int(replication) > 1:
                partition = k_redundant_replication(partition,
                                                    int(replication))
        self.dataset = dataset
        self.model = model
        self.mode = mode
        self.policy = policy or BatchPolicy()
        self.max_queue = max_queue
        self.spec = spec or DEFAULT_SPEC
        self.seed = int(seed)
        self.shards = ShardMap(partition, dataset.graph)
        self.num_replicas = self.shards.num_shards
        self.routing = routing
        self.autoscale = autoscale
        self.retry = retry or RetryPolicy()
        if resilience is not None \
                and not isinstance(resilience, ResiliencePolicy):
            raise FleetError(
                f"resilience must be a ResiliencePolicy, got "
                f"{type(resilience).__name__}")
        self.resilience = resilience
        self.schedule = None
        if schedule is not None:
            self.schedule = schedule \
                if isinstance(schedule, FleetSchedule) \
                else FleetSchedule(schedule, self.num_replicas)
            crashes = list(crashes) + list(self.schedule.crashes)
        self.recovery = None
        if recovery is not None:
            self.recovery = recovery \
                if isinstance(recovery, ReplicaRecovery) \
                else ReplicaRecovery(recovery)
        self.crashes = self._check_crashes(crashes)

        # One offline table, shared: the fleet precomputes embeddings
        # once and replicates them (they are read-only), so the offline
        # cost is charged once, not per replica.
        self.embeddings = embeddings
        if mode != "sampled" and self.embeddings is None:
            self.embeddings = LayerwiseEmbeddings(
                model, dataset.graph, dataset.features)
        self._executor_kwargs = dict(
            mode=mode, fanout=fanout, cache_policy=cache_policy,
            cache_ratio=cache_ratio, warm_ratio=warm_ratio,
            cache_scores=cache_scores, spec=self.spec,
            embeddings=self.embeddings)
        self.replicas = []

    def _check_crashes(self, crashes):
        events = []
        for event in crashes:
            time, replica_id, down = event
            if not 0 <= replica_id < self.num_replicas:
                raise FleetError(
                    f"crash fault names replica {replica_id}; the "
                    f"fleet has {self.num_replicas}")
            if time < 0 or down <= 0:
                raise FleetError(
                    f"crash fault needs time >= 0 and down_seconds > 0,"
                    f" got {event}")
            events.append((float(time), int(replica_id), float(down)))
        return sorted(events)

    def _build_replicas(self):
        """Fresh replicas (cold caches, empty queues) for one run."""
        self.replicas = [
            ReplicaServer(
                i, self.shards,
                ShardExecutor(self.shards, i, self.dataset, self.model,
                              **self._executor_kwargs),
                policy=self.policy, max_queue=self.max_queue,
                seed=self.seed)
            for i in range(self.num_replicas)]
        return self.replicas

    # ------------------------------------------------------------------
    # The simulated-time fleet loop
    # ------------------------------------------------------------------
    def run(self, requests):
        """Serve a request trace (sorted by arrival); returns a
        :class:`~repro.fleet.metrics.FleetReport`."""
        was_training = self.model.training
        self.model.eval()
        try:
            return self._run(list(requests))
        finally:
            self.model.train() if was_training else self.model.eval()

    @staticmethod
    def _hedge_delay(hedge, latencies):
        """Hedge delay from the observed latency quantile, or ``None``
        while too few completions are on record to estimate it."""
        if len(latencies) < hedge.min_observations:
            return None
        return max(hedge.min_delay,
                   percentile(latencies, hedge.delay_quantile))

    def _run(self, requests):
        if not requests:
            raise ServingError("cannot serve an empty request trace")
        replicas = self._build_replicas()
        resil = self.resilience
        detector = FailureDetector(resil.detector, self.num_replicas) \
            if resil is not None and resil.detector is not None \
            else None
        breakers = [CircuitBreaker(resil.breaker) for _ in replicas] \
            if resil is not None and resil.breaker is not None \
            else None
        hedge = resil.hedge if resil is not None else None
        budget = resil.retry_budget if resil is not None else None
        recovery = self.recovery
        schedule = self.schedule
        router = Router(self.shards, replicas, self.routing,
                        breakers=breakers)
        autoscaler = Autoscaler(self.autoscale, replicas) \
            if self.autoscale is not None else None

        # Fault timeline: crashes and their recoveries — plus suspect/
        # dead/snapshot events when the resilience layer is on — one
        # heap.
        faults = []
        for seq, (time, replica_id, down) in enumerate(self.crashes):
            heapq.heappush(faults, (time, seq, "crash", replica_id,
                                    down))
        # Failover re-submissions: (due time, seq, request).
        pending = []
        pending_seq = len(self.crashes)
        if recovery is not None:
            pending_seq += 1
            heapq.heappush(faults, (recovery.snapshot_interval,
                                    pending_seq, "snapshot", -1, 0.0))

        # Hedging state (untouched when hedging is off).  With hedging
        # on, a dispatched batch's responses become *completion events*
        # — a response only "arrives" at its completion instant, so a
        # hedge fired while the primary is still in flight can win.
        hedges = []          # (fire time, seq, request)
        completions = []     # (completion time, seq, response)
        assigned = {}        # request_id -> replica ids holding a copy
        hedge_target = {}    # request_id -> the hedge copy's replica
        done_ids = set()     # first-response-wins dedup
        latencies = []       # completed latencies -> the p95 delay
        hedges_launched = 0
        hedges_won = 0
        hedges_wasted = 0
        hedges_cancelled = 0

        responses = []
        rejected = 0
        requeued = 0
        budget_dropped = 0
        dropped_ids = []
        attempts = {}        # request_id -> crash re-route count
        clock = 0.0
        i, n = 0, len(requests)
        inf = float("inf")

        def route_in(request):
            nonlocal rejected, pending_seq
            if hedge is not None and request.request_id in done_ids:
                return  # a hedge twin already answered it
            try:
                replica, is_owner = router.route(request, now=clock)
            except FleetError:
                # Every replica is down: open-loop load cannot wait
                # for the cluster — the request is lost (dropped, and
                # surfaced as such in the report).
                rejected += 1
                dropped_ids.append(request.request_id)
                return
            if not replica.submit(request, is_owner):
                rejected += 1
                return
            if hedge is not None:
                copies = assigned.setdefault(request.request_id, [])
                copies.append(replica.replica_id)
                if len(copies) == 1:
                    delay = self._hedge_delay(hedge, latencies)
                    if delay is not None:
                        pending_seq += 1
                        heapq.heappush(hedges, (clock + delay,
                                                pending_seq, request))

        while True:
            draining = i >= n and not pending
            t_arrival = requests[i].arrival if i < n else inf
            t_pending = pending[0][0] if pending else inf
            t_fault = faults[0][0] if faults else inf
            t_hedge = hedges[0][0] if hedges else inf
            t_completion = completions[0][0] if completions else inf
            t_dispatch = inf
            for replica in replicas:
                t_r = replica.next_dispatch_time(draining)
                if t_r is not None:
                    t_dispatch = min(t_dispatch, t_r)
            t = min(t_arrival, t_pending, t_fault, t_hedge,
                    t_completion, t_dispatch)
            if t == inf:
                break
            clock = max(clock, t)

            # 1. Faults due now: crash (drain + schedule failover and
            # recovery) and recovery events; with the resilience layer
            # also suspicion/death declarations and cache snapshots.
            while faults and faults[0][0] <= clock:
                _, _, kind, replica_id, down = heapq.heappop(faults)
                replica = replicas[replica_id] if replica_id >= 0 \
                    else None
                if kind == "crash":
                    if not replica.alive:
                        continue
                    orphans = replica.crash(clock, down,
                                            cold=recovery is not None)
                    if detector is not None:
                        # The detector suspects the silence an order of
                        # magnitude before the retry timeout would.
                        due = detector.suspect_at(replica_id, clock)
                    else:
                        # The router notices the dead node only after
                        # the retry policy's detection timeout; the
                        # orphaned requests re-enter routing then.
                        due = clock + self.retry.timeout
                    for orphan in orphans:
                        if budget is not None:
                            count = attempts.get(orphan.request_id,
                                                 0) + 1
                            attempts[orphan.request_id] = count
                            if count > budget:
                                # Retry budget exhausted: bound the
                                # amplification, drop the request.
                                rejected += 1
                                budget_dropped += 1
                                dropped_ids.append(orphan.request_id)
                                continue
                        pending_seq += 1
                        heapq.heappush(pending,
                                       (due, pending_seq, orphan))
                    requeued += len(orphans)
                    heapq.heappush(faults, (clock + down, pending_seq,
                                            "recover", replica_id, 0.0))
                    if detector is not None:
                        pending_seq += 1
                        heapq.heappush(faults, (due, pending_seq,
                                                "suspect", replica_id,
                                                0.0))
                        pending_seq += 1
                        heapq.heappush(
                            faults,
                            (detector.dead_at(replica_id, clock),
                             pending_seq, "dead", replica_id, 0.0))
                elif kind == "recover":
                    replica.recover(clock)
                    if detector is not None:
                        detector.heartbeat(replica_id, clock)
                    if recovery is not None:
                        # Re-warm the cold cache from the newest valid
                        # snapshot (falls back to the previous one if
                        # the last save was torn by the crash).
                        recovery.restore(replica)
                elif kind == "suspect":
                    if not replica.alive:
                        detector.suspicions += 1
                        if breakers is not None:
                            breakers[replica_id].trip(clock)
                elif kind == "dead":
                    if not replica.alive:
                        detector.deaths_declared += 1
                        if autoscaler is not None:
                            autoscaler.replace(clock, replica_id)
                else:  # snapshot
                    for target in replicas:
                        if target.alive:
                            recovery.save(target, clock)
                    if i < n or pending:
                        pending_seq += 1
                        heapq.heappush(
                            faults,
                            (clock + recovery.snapshot_interval,
                             pending_seq, "snapshot", -1, 0.0))

            # 1b. Response arrivals (hedge mode only): a response lands
            # at its *completion* instant — the first copy back wins,
            # a later twin is wasted work, and the winner cancels any
            # copy still queued elsewhere.
            while completions and completions[0][0] <= clock:
                _, _, response = heapq.heappop(completions)
                rid = response.request.request_id
                if rid in done_ids:
                    hedges_wasted += 1
                    continue
                done_ids.add(rid)
                latencies.append(response.completion
                                 - response.request.arrival)
                responses.append(response)
                if hedge_target.get(rid) is None:
                    continue
                if response.replica == hedge_target[rid]:
                    hedges_won += 1
                for other in assigned.get(rid, []):
                    if other == response.replica:
                        continue
                    if replicas[other].batcher.cancel(rid):
                        hedges_cancelled += 1

            # 2. Arrivals and failover re-submissions due now, merged
            # in time order (ties: original arrivals first).
            while (i < n and requests[i].arrival <= clock) \
                    or (pending and pending[0][0] <= clock):
                take_arrival = i < n and requests[i].arrival <= clock \
                    and (not pending
                         or requests[i].arrival <= pending[0][0])
                if take_arrival:
                    request = requests[i]
                    i += 1
                else:
                    _, _, request = heapq.heappop(pending)
                route_in(request)
                if autoscaler is not None:
                    autoscaler.evaluate(clock)

            # 2b. Hedge timers due now: launch a second copy of any
            # still-unanswered request on a replica not already holding
            # one (opportunistic — silently skipped when impossible).
            while hedges and hedges[0][0] <= clock:
                _, _, request = heapq.heappop(hedges)
                rid = request.request_id
                if rid in done_ids:
                    continue
                routed = router.route_hedge(
                    request, set(assigned.get(rid, [])), now=clock)
                if routed is None:
                    continue
                replica, is_owner = routed
                if not replica.submit(request, is_owner):
                    continue
                assigned[rid].append(replica.replica_id)
                hedge_target[rid] = replica.replica_id
                hedges_launched += 1

            # 3. Dispatches ready now: one batch per ready replica, in
            # replica-id order.  With hedging, responses are deferred
            # to completion events (step 1b) so an in-flight primary
            # can still lose to a faster hedge twin.
            draining = i >= n and not pending
            for replica in replicas:
                t_r = replica.next_dispatch_time(draining)
                if t_r is not None and t_r <= clock:
                    if schedule is not None:
                        straggle, slowlink = schedule.multipliers(
                            replica.replica_id, clock)
                        batch = replica.dispatch(clock,
                                                 straggle=straggle,
                                                 slowlink=slowlink)
                    else:
                        batch = replica.dispatch(clock)
                    if breakers is not None:
                        breakers[replica.replica_id].record_success(
                            clock)
                    if hedge is None:
                        responses.extend(batch)
                    else:
                        for response in batch:
                            pending_seq += 1
                            heapq.heappush(completions,
                                           (response.completion,
                                            pending_seq, response))
                    PERF.count("fleet_batches")
            if autoscaler is not None:
                autoscaler.finalize_drains(clock)

        # A schedule alone (crash/straggler windows) adds no counters of
        # its own, and leaving the field None keeps a schedule-driven
        # baseline run report-identical to the legacy crashes= path.
        resilience_stats = None
        if resil is not None or recovery is not None \
                or self.shards.replicated:
            resilience_stats = {
                "suspicions": detector.suspicions if detector else 0,
                "deaths_declared":
                    detector.deaths_declared if detector else 0,
                "mean_detection_delay":
                    detector.mean_detection_delay if detector
                    else None,
                "hedges_launched": hedges_launched,
                "hedges_won": hedges_won,
                "hedges_wasted": hedges_wasted,
                "hedges_cancelled": hedges_cancelled,
                "breaker_trips":
                    sum(b.trips for b in breakers) if breakers else 0,
                "breaker_half_opens":
                    sum(b.half_opens for b in breakers)
                    if breakers else 0,
                "backup_routed": router.backup_routed,
                "retry_budget_drops": budget_dropped,
                "snapshots": recovery.snapshots if recovery else 0,
                "recoveries": recovery.recoveries if recovery else 0,
                "cold_recoveries":
                    recovery.cold_recoveries if recovery else 0,
            }

        PERF.count("fleet_requests", len(responses))
        return self._report(n, responses, rejected, requeued, router,
                            autoscaler, replicas, dropped_ids,
                            resilience_stats)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, num_requests, responses, rejected, requeued,
                router, autoscaler, replicas, dropped_ids=(),
                resilience_stats=None):
        merged = StageProfiler()
        for replica in replicas:
            merged.merge(replica.metrics)

        labels = self.dataset.labels
        correct = sum(int(r.prediction == labels[r.request.vertex])
                      for r in responses)
        completed = len(responses)
        duration = max(r.completion for r in responses) \
            if responses else 0.0

        zero_remote = sum(r.zero_remote_completed for r in replicas)
        local_rows = sum(r.executor.local_rows for r in replicas)
        remote_rows = sum(r.executor.remote_rows for r in replicas)
        total_rows = local_rows + remote_rows

        hits = {"hot": 0, "warm": 0, "flat": 0}
        lookups = 0
        tiered = False
        for replica in replicas:
            cache = replica.executor.cache
            if isinstance(cache, TieredCache):
                tiered = True
                hits["hot"] += cache.hot_hits
                hits["warm"] += cache.warm_hits
                lookups += cache.requests
            elif cache is not None:
                hits["flat"] += cache.hits
                lookups += cache.hits + cache.misses
        if tiered:
            hot_rate = hits["hot"] / lookups if lookups else 0.0
            warm_rate = hits["warm"] / lookups if lookups else 0.0
            hit_rate = hot_rate
        else:
            hot_rate = hit_rate = (hits["flat"] / lookups
                                   if lookups else 0.0)
            warm_rate = 0.0

        precompute = replicas[0].executor.precompute_seconds \
            if replicas else 0.0
        active_max = autoscaler.active_max if autoscaler is not None \
            else self.num_replicas
        return FleetReport(
            mode=self.mode,
            policy=self.policy.describe(),
            partitioner=self.shards.partition.method,
            num_replicas=self.num_replicas,
            num_requests=num_requests,
            completed=completed,
            rejected=rejected,
            spillovers=router.spillovers,
            failovers=router.failovers,
            requeued=requeued,
            duration_seconds=duration,
            throughput=completed / duration if duration else 0.0,
            **_latency_fields(merged.summary("latency")),
            bp_seconds=sum(r.bp_seconds for r in replicas),
            dt_seconds=sum(r.dt_seconds for r in replicas),
            nn_seconds=sum(r.nn_seconds for r in replicas),
            remote_seconds=sum(r.executor.remote_seconds
                               for r in replicas),
            precompute_seconds=precompute,
            accuracy=correct / completed if completed else 0.0,
            routing_locality=(zero_remote / completed
                              if completed else 1.0),
            remote_row_fraction=(remote_rows / total_rows
                                 if total_rows else 0.0),
            cache_hit_rate=hit_rate,
            hot_hit_rate=hot_rate,
            warm_hit_rate=warm_rate,
            cache_policy=self._executor_kwargs["cache_policy"],
            scale_events=list(autoscaler.events)
            if autoscaler is not None else [],
            replicas_active_max=active_max,
            dropped=len(dropped_ids),
            dropped_request_ids=list(dropped_ids),
            replication_factor=self.shards.replication_factor(),
            resilience=resilience_stats,
            replicas=[r.report() for r in replicas],
            responses=responses,
        )
