"""The sharded serving fleet: N replicas, one shard each, one router.

:class:`FleetEngine` generalizes the single-server
:class:`~repro.serve.engine.ServeEngine` queueing simulation to a
multi-replica discrete-event loop:

* each replica owns one shard of a :mod:`repro.partition` result and
  runs its own :class:`~repro.serve.batcher.MicroBatcher` +
  :class:`~repro.fleet.replica.ShardExecutor` (remote rows billed over
  the network);
* the :class:`~repro.fleet.router.Router` sends every request to the
  owner of its seed vertex, spilling/failing over by penalized queue
  depth;
* optional queue-depth autoscaling
  (:class:`~repro.fleet.router.Autoscaler`) and crash faults (queued
  requests of a dead replica are re-routed after a
  :class:`~repro.faults.RetryPolicy` detection timeout — the serving
  reuse of the training stack's fault model).

Everything runs on the simulated clock; the loop's event order —
faults, then arrivals/re-submissions, then dispatches, at equal times
— makes a 1-replica fleet reproduce ``ServeEngine``'s batch sequence
exactly.  Answers in ``precomputed`` mode are row-wise
(:meth:`~repro.serve.precompute.LayerwiseEmbeddings.rowwise_logits`)
and therefore *bit-identical* to the single server's for the same
trace, regardless of how routing re-batched the requests — the
fleet-vs-single-server invariant the benchmark asserts.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.config import make_partitioner
from ..errors import FleetError, ServingError
from ..faults.retry import RetryPolicy
from ..partition.base import PartitionResult
from ..perf import PERF, StageProfiler
from ..serve.batcher import BatchPolicy
from ..serve.executor import SERVE_MODES
from ..serve.precompute import LayerwiseEmbeddings
from ..transfer.hardware import DEFAULT_SPEC
from ..transfer.tiered import TieredCache
from .metrics import FleetReport, _latency_fields
from .replica import ReplicaServer, ShardExecutor
from .router import Autoscaler, Router
from .shards import ShardMap

__all__ = ["FleetEngine"]


class FleetEngine:
    """Multi-replica online inference over one partitioned graph.

    Parameters
    ----------
    dataset, model:
        As in :class:`~repro.serve.engine.ServeEngine`.
    partition:
        Either a :class:`~repro.partition.base.PartitionResult` (its
        part count fixes the fleet size) or a partitioner name from
        :func:`~repro.core.config.make_partitioner` ("hash",
        "metis-v", ...), in which case ``num_replicas`` is required and
        the partition is computed here.
    num_replicas:
        Fleet size; only needed (and then required) when ``partition``
        is a name.
    mode, policy, max_queue, fanout, cache_policy, cache_ratio,
    warm_ratio, cache_scores, spec, seed, embeddings:
        As in ``ServeEngine`` — applied per replica (each replica gets
        its own cache with the same budgets; ``cache_ratio`` remains a
        fraction of the *full* row universe).  A precomputed/full
        embedding table is built once and shared by every replica.
    routing:
        A :class:`~repro.fleet.router.RoutingPolicy` (default:
        owner-first, no spillover).
    autoscale:
        Optional :class:`~repro.fleet.router.AutoscalePolicy`; when
        given, replicas beyond ``min_replicas`` start deactivated and
        the queue-depth signal drives the active set.
    crashes:
        Crash-fault schedule: iterable of ``(time, replica_id,
        down_seconds)`` triples.  A crashed replica's queued requests
        are re-routed after ``retry.timeout`` simulated seconds (the
        failure-detection delay) and it rejoins, empty-queued, at
        ``time + down_seconds``.
    retry:
        The :class:`~repro.faults.RetryPolicy` whose ``timeout`` models
        failure detection; default :class:`RetryPolicy()`.
    """

    def __init__(self, dataset, model, partition="metis-v",
                 num_replicas=None, mode="precomputed", policy=None,
                 max_queue=None, fanout=(10, 10), cache_policy="lru",
                 cache_ratio=0.0, warm_ratio=0.0, cache_scores=None,
                 spec=None, seed=0, embeddings=None, routing=None,
                 autoscale=None, crashes=(), retry=None):
        if mode not in SERVE_MODES:
            raise ServingError(
                f"unknown serve mode {mode!r}; known: {SERVE_MODES}")
        if isinstance(partition, PartitionResult):
            if num_replicas is not None \
                    and num_replicas != partition.num_parts:
                raise FleetError(
                    f"num_replicas={num_replicas} but the partition "
                    f"has {partition.num_parts} parts")
        else:
            if num_replicas is None:
                raise FleetError(
                    "num_replicas is required when partition is a "
                    "method name")
            partition = make_partitioner(partition).partition(
                dataset.graph, num_replicas, split=dataset.split,
                rng=np.random.default_rng(int(seed)))
        self.dataset = dataset
        self.model = model
        self.mode = mode
        self.policy = policy or BatchPolicy()
        self.max_queue = max_queue
        self.spec = spec or DEFAULT_SPEC
        self.seed = int(seed)
        self.shards = ShardMap(partition, dataset.graph)
        self.num_replicas = self.shards.num_shards
        self.routing = routing
        self.autoscale = autoscale
        self.retry = retry or RetryPolicy()
        self.crashes = self._check_crashes(crashes)

        # One offline table, shared: the fleet precomputes embeddings
        # once and replicates them (they are read-only), so the offline
        # cost is charged once, not per replica.
        self.embeddings = embeddings
        if mode != "sampled" and self.embeddings is None:
            self.embeddings = LayerwiseEmbeddings(
                model, dataset.graph, dataset.features)
        self._executor_kwargs = dict(
            mode=mode, fanout=fanout, cache_policy=cache_policy,
            cache_ratio=cache_ratio, warm_ratio=warm_ratio,
            cache_scores=cache_scores, spec=self.spec,
            embeddings=self.embeddings)
        self.replicas = []

    def _check_crashes(self, crashes):
        events = []
        for event in crashes:
            time, replica_id, down = event
            if not 0 <= replica_id < self.num_replicas:
                raise FleetError(
                    f"crash fault names replica {replica_id}; the "
                    f"fleet has {self.num_replicas}")
            if time < 0 or down <= 0:
                raise FleetError(
                    f"crash fault needs time >= 0 and down_seconds > 0,"
                    f" got {event}")
            events.append((float(time), int(replica_id), float(down)))
        return sorted(events)

    def _build_replicas(self):
        """Fresh replicas (cold caches, empty queues) for one run."""
        self.replicas = [
            ReplicaServer(
                i, self.shards,
                ShardExecutor(self.shards, i, self.dataset, self.model,
                              **self._executor_kwargs),
                policy=self.policy, max_queue=self.max_queue,
                seed=self.seed)
            for i in range(self.num_replicas)]
        return self.replicas

    # ------------------------------------------------------------------
    # The simulated-time fleet loop
    # ------------------------------------------------------------------
    def run(self, requests):
        """Serve a request trace (sorted by arrival); returns a
        :class:`~repro.fleet.metrics.FleetReport`."""
        was_training = self.model.training
        self.model.eval()
        try:
            return self._run(list(requests))
        finally:
            self.model.train() if was_training else self.model.eval()

    def _run(self, requests):
        if not requests:
            raise ServingError("cannot serve an empty request trace")
        replicas = self._build_replicas()
        router = Router(self.shards, replicas, self.routing)
        autoscaler = Autoscaler(self.autoscale, replicas) \
            if self.autoscale is not None else None

        # Fault timeline: crashes and their recoveries, one heap.
        faults = []
        for seq, (time, replica_id, down) in enumerate(self.crashes):
            heapq.heappush(faults, (time, seq, "crash", replica_id,
                                    down))
        # Failover re-submissions: (due time, seq, request).
        pending = []
        pending_seq = len(self.crashes)

        responses = []
        rejected = 0
        requeued = 0
        clock = 0.0
        i, n = 0, len(requests)
        inf = float("inf")

        def route_in(request):
            nonlocal rejected
            try:
                replica, is_owner = router.route(request)
            except FleetError:
                # Every replica is down: open-loop load cannot wait
                # for the cluster — the request is lost.
                rejected += 1
                return
            if not replica.submit(request, is_owner):
                rejected += 1

        while True:
            draining = i >= n and not pending
            t_arrival = requests[i].arrival if i < n else inf
            t_pending = pending[0][0] if pending else inf
            t_fault = faults[0][0] if faults else inf
            t_dispatch = inf
            for replica in replicas:
                t_r = replica.next_dispatch_time(draining)
                if t_r is not None:
                    t_dispatch = min(t_dispatch, t_r)
            t = min(t_arrival, t_pending, t_fault, t_dispatch)
            if t == inf:
                break
            clock = max(clock, t)

            # 1. Faults due now: crash (drain + schedule failover and
            # recovery) and recovery events.
            while faults and faults[0][0] <= clock:
                _, _, kind, replica_id, down = heapq.heappop(faults)
                replica = replicas[replica_id]
                if kind == "crash":
                    if not replica.alive:
                        continue
                    orphans = replica.crash(clock, down)
                    # The router notices the dead node only after the
                    # retry policy's detection timeout; the orphaned
                    # requests re-enter routing then.
                    due = clock + self.retry.timeout
                    for orphan in orphans:
                        pending_seq += 1
                        heapq.heappush(pending,
                                       (due, pending_seq, orphan))
                    requeued += len(orphans)
                    heapq.heappush(faults, (clock + down, pending_seq,
                                            "recover", replica_id, 0.0))
                else:
                    replica.recover(clock)

            # 2. Arrivals and failover re-submissions due now, merged
            # in time order (ties: original arrivals first).
            while (i < n and requests[i].arrival <= clock) \
                    or (pending and pending[0][0] <= clock):
                take_arrival = i < n and requests[i].arrival <= clock \
                    and (not pending
                         or requests[i].arrival <= pending[0][0])
                if take_arrival:
                    request = requests[i]
                    i += 1
                else:
                    _, _, request = heapq.heappop(pending)
                route_in(request)
                if autoscaler is not None:
                    autoscaler.evaluate(clock)

            # 3. Dispatches ready now: one batch per ready replica, in
            # replica-id order.
            draining = i >= n and not pending
            for replica in replicas:
                t_r = replica.next_dispatch_time(draining)
                if t_r is not None and t_r <= clock:
                    responses.extend(replica.dispatch(clock))
                    PERF.count("fleet_batches")
            if autoscaler is not None:
                autoscaler.finalize_drains(clock)

        PERF.count("fleet_requests", len(responses))
        return self._report(n, responses, rejected, requeued, router,
                            autoscaler, replicas)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, num_requests, responses, rejected, requeued,
                router, autoscaler, replicas):
        merged = StageProfiler()
        for replica in replicas:
            merged.merge(replica.metrics)

        labels = self.dataset.labels
        correct = sum(int(r.prediction == labels[r.request.vertex])
                      for r in responses)
        completed = len(responses)
        duration = max(r.completion for r in responses) \
            if responses else 0.0

        zero_remote = sum(r.zero_remote_completed for r in replicas)
        local_rows = sum(r.executor.local_rows for r in replicas)
        remote_rows = sum(r.executor.remote_rows for r in replicas)
        total_rows = local_rows + remote_rows

        hits = {"hot": 0, "warm": 0, "flat": 0}
        lookups = 0
        tiered = False
        for replica in replicas:
            cache = replica.executor.cache
            if isinstance(cache, TieredCache):
                tiered = True
                hits["hot"] += cache.hot_hits
                hits["warm"] += cache.warm_hits
                lookups += cache.requests
            elif cache is not None:
                hits["flat"] += cache.hits
                lookups += cache.hits + cache.misses
        if tiered:
            hot_rate = hits["hot"] / lookups if lookups else 0.0
            warm_rate = hits["warm"] / lookups if lookups else 0.0
            hit_rate = hot_rate
        else:
            hot_rate = hit_rate = (hits["flat"] / lookups
                                   if lookups else 0.0)
            warm_rate = 0.0

        precompute = replicas[0].executor.precompute_seconds \
            if replicas else 0.0
        active_max = autoscaler.active_max if autoscaler is not None \
            else self.num_replicas
        return FleetReport(
            mode=self.mode,
            policy=self.policy.describe(),
            partitioner=self.shards.partition.method,
            num_replicas=self.num_replicas,
            num_requests=num_requests,
            completed=completed,
            rejected=rejected,
            spillovers=router.spillovers,
            failovers=router.failovers,
            requeued=requeued,
            duration_seconds=duration,
            throughput=completed / duration if duration else 0.0,
            **_latency_fields(merged.summary("latency")),
            bp_seconds=sum(r.bp_seconds for r in replicas),
            dt_seconds=sum(r.dt_seconds for r in replicas),
            nn_seconds=sum(r.nn_seconds for r in replicas),
            remote_seconds=sum(r.executor.remote_seconds
                               for r in replicas),
            precompute_seconds=precompute,
            accuracy=correct / completed if completed else 0.0,
            routing_locality=(zero_remote / completed
                              if completed else 1.0),
            remote_row_fraction=(remote_rows / total_rows
                                 if total_rows else 0.0),
            cache_hit_rate=hit_rate,
            hot_hit_rate=hot_rate,
            warm_hit_rate=warm_rate,
            cache_policy=self._executor_kwargs["cache_policy"],
            scale_events=list(autoscaler.events)
            if autoscaler is not None else [],
            replicas_active_max=active_max,
            replicas=[r.report() for r in replicas],
            responses=responses,
        )
