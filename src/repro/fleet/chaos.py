"""Fleet chaos certification: composable fault schedules + the gates.

The resilience layer is only worth shipping if it *provably* beats the
PR 7 baseline under identical faults — and provably changes nothing
when disabled.  This harness runs both configurations against the same
composable fault schedules (crash storms, rolling stragglers, slowlink
windows, flapping) on the simulated clock and enforces four gates:

1. **PR 7 parity** — the k=1 / no-hedge / no-detector configuration
   driven through a :class:`~repro.fleet.resilience.FleetSchedule`
   must reproduce the legacy ``crashes=`` run *bit for bit* (same
   report dict, same predictions, same completion times).
2. **Prediction exactness** — every configuration, including runs
   where answers came from backup owners or hedge winners, must
   bit-match the single-server :class:`~repro.serve.engine.ServeEngine`
   predictions for the same trace.
3. **Availability** — under the identical crash storm, k-replicated
   shards + the failure detector + hedging must sustain *strictly
   higher* availability (fraction of requests answered within the SLO)
   and *strictly lower* p99 than the timeout-only baseline.
4. **Mechanism evidence** — the resilient runs must actually exercise
   the machinery: completions served by backup holders and hedge wins
   both > 0.

Availability here is SLO-attainment: a request counts as *available*
only if it completed within ``slo`` simulated seconds of its arrival
(dropped or rejected requests never do).  Goodput is the rate of such
within-SLO completions.  Shared by ``repro fleet-chaos`` and
``benchmarks/bench_fleet_chaos.py`` (writes ``BENCH_fleet_chaos.json``).
"""

from __future__ import annotations

import tempfile

import numpy as np

from ..core import Trainer
from ..core.config import TrainingConfig, make_partitioner
from ..errors import ServingError
from ..faults.plan import FaultEvent, FaultPlan
from ..graph import load_dataset
from ..serve.batcher import BatchPolicy
from ..serve.engine import ServeEngine
from ..serve.precompute import LayerwiseEmbeddings
from ..serve.requests import LoadGenerator
from .engine import FleetEngine
from .resilience import ReplicaRecovery, ResiliencePolicy
from .router import RoutingPolicy

__all__ = ["crash_storm", "rolling_stragglers", "flapping",
           "slowlink_window", "run_fleet_chaos_bench",
           "QUICK_OVERRIDES"]

#: Parameter overrides for smoke runs (CI, ``--quick``).
QUICK_OVERRIDES = dict(scale=0.15, train_epochs=1, num_requests=400,
                       rate_multiplier=30.0)


# ----------------------------------------------------------------------
# Composable fault schedules (all return a FaultPlan in the shared
# faults.plan grammar, so they print/parse with `repro chaos` specs)
# ----------------------------------------------------------------------
def crash_storm(num_replicas, start, down, count=2, spacing=0.0):
    """``count`` replicas crash in id order from ``start``, each down
    for ``down`` seconds, ``spacing`` apart (0 = simultaneous)."""
    events = [FaultEvent(kind="crash", epoch=start + i * spacing,
                         worker=i % num_replicas, duration=down)
              for i in range(count)]
    return FaultPlan(events=tuple(events))


def rolling_stragglers(num_replicas, start, duration, magnitude=8.0,
                       count=None):
    """Consecutive straggler windows rolling across the fleet: replica
    ``i`` serves ``magnitude`` times slower during its window."""
    count = num_replicas if count is None else count
    events = [FaultEvent(kind="straggler",
                         epoch=start + i * duration,
                         worker=i % num_replicas, duration=duration,
                         magnitude=magnitude)
              for i in range(count)]
    return FaultPlan(events=tuple(events))


def flapping(replica, start, period, count=3, down=None):
    """One replica repeatedly crashing and rejoining: ``count`` short
    outages of ``down`` seconds (default half the period), ``period``
    apart — the detector's worst customer."""
    down = period / 2 if down is None else down
    events = [FaultEvent(kind="crash", epoch=start + i * period,
                         worker=replica, duration=down)
              for i in range(count)]
    return FaultPlan(events=tuple(events))


def slowlink_window(start, duration, magnitude=0.25):
    """Cluster network bandwidth scaled by ``magnitude`` for the
    window — every remote fetch stretches by ``1/magnitude``."""
    return FaultPlan(events=(
        FaultEvent(kind="slowlink", epoch=start, duration=duration,
                   magnitude=magnitude),))


# ----------------------------------------------------------------------
# The certification bench
# ----------------------------------------------------------------------
def _answers(report):
    return {r.request.request_id: (r.prediction, r.completion)
            for r in report.responses}


def _availability_row(report, num_requests, slo):
    """SLO-attainment metrics of one run."""
    within = sum(1 for r in report.responses
                 if r.completion - r.request.arrival <= slo)
    duration = report.duration_seconds
    return {
        "availability": within / num_requests if num_requests else 0.0,
        "goodput": within / duration if duration else 0.0,
        "completed": report.completed,
        "rejected": report.rejected,
        "dropped": report.dropped,
        "drop_rate": report.drop_rate,
        "requeued": report.requeued,
        "failovers": report.failovers,
        "latency_p50": report.latency_p50,
        "latency_p99": report.latency_p99,
        "latency_max": report.latency_max,
        "resilience": report.resilience,
    }


def _backup_completions(report, shards):
    """Completions served by a *backup* holder of the seed vertex —
    the replicated-ownership machinery visibly doing its job."""
    if not shards.replicated:
        return 0
    count = 0
    for r in report.responses:
        vertex = r.request.vertex
        if r.replica != shards.owner(vertex) and bool(
                shards.partition.is_local(r.replica, [vertex])[0]):
            count += 1
    return count


def run_fleet_chaos_bench(dataset="ogb-arxiv", scale=0.3, model="gcn",
                          train_epochs=2, num_replicas=4,
                          base_rate=2000.0, rate_multiplier=50.0,
                          num_requests=1200, skew=0.8, seed=0,
                          partitioner="metis-v", batch_size=16,
                          max_wait=0.0005, cache_policy="lfu",
                          cache_ratio=0.1, warm_ratio=0.1,
                          max_queue=512, spill_threshold=64,
                          remote_penalty=8.0, replication=2,
                          slo=0.005, schedule=None, quick=False):
    """Run the chaos certification; returns a JSON-serializable dict.

    ``schedule`` optionally replaces the composed crash storm with a
    user spec string in the shared ``faults.plan`` grammar (times in
    simulated seconds, ``wN`` naming replicas).  ``slo`` is the
    availability deadline in simulated seconds.  ``quick=True``
    applies :data:`QUICK_OVERRIDES` for a fast smoke.
    """
    if quick:
        scale = QUICK_OVERRIDES["scale"]
        train_epochs = QUICK_OVERRIDES["train_epochs"]
        num_requests = QUICK_OVERRIDES["num_requests"]
        rate_multiplier = QUICK_OVERRIDES["rate_multiplier"]
    if not 1 <= replication <= num_replicas:
        raise ServingError(
            f"replication must be in [1, {num_replicas}], got "
            f"{replication}")
    if slo <= 0:
        raise ServingError(f"slo must be > 0, got {slo}")

    data = load_dataset(dataset, scale=scale)
    result = Trainer(data, TrainingConfig(
        model=model, epochs=train_epochs, num_workers=2,
        batch_size=256, fanout=(10, 10), seed=seed)).run()
    trained = result.model

    rate = base_rate * rate_multiplier
    trace = LoadGenerator(data.test_ids, rate=rate,
                          num_requests=num_requests, seed=seed,
                          skew=skew).generate()
    span = trace[-1].arrival
    embeddings = LayerwiseEmbeddings(trained, data.graph,
                                     data.features)
    policy = BatchPolicy(max_batch_size=int(batch_size),
                         max_wait=float(max_wait))
    routing = RoutingPolicy(spill_threshold=int(spill_threshold),
                            remote_penalty=float(remote_penalty))
    partition = make_partitioner(partitioner).partition(
        data.graph, num_replicas, split=data.split,
        rng=np.random.default_rng(seed))
    common = dict(mode="precomputed", policy=policy,
                  max_queue=max_queue, cache_policy=cache_policy,
                  cache_ratio=cache_ratio, warm_ratio=warm_ratio,
                  seed=seed, embeddings=embeddings, routing=routing)

    reference = {r.request.request_id: r.prediction
                 for r in ServeEngine(
                     data, trained, mode="precomputed", policy=policy,
                     max_queue=max_queue, cache_policy=cache_policy,
                     cache_ratio=cache_ratio, warm_ratio=warm_ratio,
                     seed=seed, embeddings=embeddings)
                 .run(trace).responses}

    def exact(report):
        return all(reference[r.request.request_id] == r.prediction
                   for r in report.responses)

    # The scenario suite: identical schedules for both configurations.
    storm = crash_storm(num_replicas, start=0.25 * span,
                        down=0.35 * span, count=2,
                        spacing=0.05 * span) \
        if schedule is None else FaultPlan.parse(schedule)
    scenarios = [
        ("crash_storm", storm),
        ("rolling_stragglers",
         rolling_stragglers(num_replicas, start=0.1 * span,
                            duration=0.2 * span, magnitude=8.0)),
        ("slowlink",
         slowlink_window(start=0.2 * span, duration=0.4 * span,
                         magnitude=0.25)),
        ("flapping",
         flapping(replica=0, start=0.2 * span, period=0.2 * span,
                  count=3, down=0.08 * span)),
    ]
    if quick:
        scenarios = scenarios[:2]

    resilient_kwargs = dict(replication=replication,
                            resilience=ResiliencePolicy())

    # ------------------------------------------------------------------
    # Gate 1 — PR 7 parity: the baseline run through a FleetSchedule
    # must be bit-identical to the legacy crashes= path.
    # ------------------------------------------------------------------
    baseline_storm = FleetEngine(data, trained, partition=partition,
                                 schedule=storm, **common).run(trace)
    crash_triples = [(float(e.epoch), e.worker, float(e.duration))
                     for e in storm if e.kind == "crash"]
    legacy = FleetEngine(data, trained, partition=partition,
                         crashes=crash_triples, **common).run(trace)
    parity = (baseline_storm.to_dict() == legacy.to_dict()
              and _answers(baseline_storm) == _answers(legacy))
    if not parity:
        raise ServingError(
            "chaos gate failed: the schedule-driven baseline diverged "
            "from the legacy crashes= run (PR 7 parity broken)")

    # ------------------------------------------------------------------
    # Scenario sweep + remaining gates.
    # ------------------------------------------------------------------
    rows = []
    gates = {"pr7_parity": True}
    with tempfile.TemporaryDirectory(
            prefix="repro-fleet-chaos-") as snapdir:
        for name, plan in scenarios:
            if name == "crash_storm":
                base_report = baseline_storm
            else:
                base_report = FleetEngine(
                    data, trained, partition=partition, schedule=plan,
                    **common).run(trace)
            resilient_engine = FleetEngine(
                data, trained, partition=partition, schedule=plan,
                recovery=ReplicaRecovery(
                    snapdir + f"/{name}",
                    snapshot_interval=0.1 * span),
                **resilient_kwargs, **common)
            resilient_report = resilient_engine.run(trace)
            if not (exact(base_report) and exact(resilient_report)):
                raise ServingError(
                    f"chaos gate failed: predictions diverged from "
                    f"the single-server reference under {name}")
            rows.append({
                "scenario": name,
                "schedule": plan.describe(),
                "baseline": _availability_row(base_report,
                                              num_requests, slo),
                "resilient": dict(
                    _availability_row(resilient_report, num_requests,
                                      slo),
                    backup_completions=_backup_completions(
                        resilient_report, resilient_engine.shards)),
            })

    storm_row = rows[0]
    gates["predictions_exact"] = True
    gates["availability_improves"] = (
        storm_row["resilient"]["availability"]
        > storm_row["baseline"]["availability"])
    gates["p99_improves"] = (
        storm_row["resilient"]["latency_p99"]
        < storm_row["baseline"]["latency_p99"])
    gates["backup_served"] = \
        storm_row["resilient"]["backup_completions"] > 0
    straggle_row = rows[1]
    gates["hedges_won"] = (straggle_row["resilient"]["resilience"]
                           ["hedges_won"] > 0)
    failed = sorted(k for k, ok in gates.items() if not ok)
    if failed:
        raise ServingError(
            f"chaos gates failed: {failed} (see BENCH_fleet_chaos "
            f"rows for the measured numbers)")

    return {
        "dataset": data.name,
        "scale": scale,
        "model": model,
        "train_epochs": train_epochs,
        "test_accuracy": result.test_accuracy,
        "load": {"base_rate": base_rate,
                 "rate_multiplier": rate_multiplier, "rate": rate,
                 "num_requests": num_requests, "skew": skew,
                 "seed": seed, "trace_span_seconds": span},
        "slo_seconds": slo,
        "batching": policy.describe(),
        "routing": {"spill_threshold": spill_threshold,
                    "remote_penalty": remote_penalty},
        "partitioner": partitioner,
        "num_replicas": num_replicas,
        "replication": replication,
        "gates": gates,
        "scenarios": rows,
    }
