"""One serving replica: a shard-aware executor behind its own
micro-batch queue.

:class:`ShardExecutor` specializes the single-server
:class:`~repro.serve.executor.BatchExecutor` for a fleet node that owns
one graph shard: any row the local hierarchy cannot resolve is split by
:class:`~repro.fleet.shards.ShardMap` ownership, and the foreign rows
are billed over the cluster network
(:meth:`~repro.transfer.hardware.HardwareSpec.network_time`, one
message per distinct owning shard) instead of local disk.  With an
all-local fetch the billing formulas reduce *exactly* to the base
executor's — a 1-replica fleet charges bit-identical seconds to a
single :class:`~repro.serve.engine.ServeEngine`, which the equivalence
tests pin down.

:class:`ReplicaServer` is the queueing shell around one executor: a
per-replica :class:`~repro.serve.batcher.MicroBatcher`, a seeded rng,
a :class:`~repro.perf.StageProfiler` recording latency/batch/queue
distributions, and the liveness flags (``alive`` — crash faults;
``active``/``draining`` — autoscaling) the router and fleet engine
steer by.  It holds no clock: the engine passes simulated time in.
"""

from __future__ import annotations

import numpy as np

from ..errors import AdmissionError, FleetError
from ..perf.profiler import StageProfiler
from ..serve.batcher import MicroBatcher
from ..serve.executor import BatchExecutor
from ..serve.requests import InferenceResponse
from ..transfer.tiered import TieredCache

__all__ = ["ShardExecutor", "ReplicaServer"]


class ShardExecutor(BatchExecutor):
    """A :class:`BatchExecutor` whose non-resident fetches respect
    shard ownership.

    Parameters are the base executor's plus:

    shards:
        The fleet's :class:`~repro.fleet.shards.ShardMap`.
    replica_id:
        This node's shard id in ``0..num_shards-1``.

    Extra counters: ``local_rows`` / ``remote_rows`` (rows resolved
    on-node vs. fetched from other shards over the network),
    ``remote_seconds`` (simulated network+share time of those fetches),
    and ``last_remote_rows`` (remote rows of the most recent fetch —
    the per-batch locality attribution the fleet report aggregates).
    """

    def __init__(self, shards, replica_id, dataset, model, **kwargs):
        self.shards = shards
        self.replica_id = int(replica_id)
        if not 0 <= self.replica_id < shards.num_shards:
            raise FleetError(
                f"replica id {replica_id} out of range "
                f"[0, {shards.num_shards})")
        super().__init__(dataset, model, **kwargs)
        self.local_rows = 0
        self.remote_rows = 0
        self.remote_seconds = 0.0
        self.last_remote_rows = 0
        self.last_remote_seconds = 0.0

    def reset_counters(self):
        super().reset_counters()
        self.local_rows = 0
        self.remote_rows = 0
        self.remote_seconds = 0.0
        self.last_remote_rows = 0
        self.last_remote_seconds = 0.0

    def _remote_cost(self, remote, row_bytes, pcie_share):
        """Network path of a remote fetch: scatter-gather on the owning
        nodes, one network message per distinct owner shard, plus this
        fetch's share of the local PCIe DMA."""
        remote_bytes = len(remote) * row_bytes
        owners = self.shards.owner(remote)
        messages = len(np.unique(owners))
        return (self.spec.gather_time(remote_bytes)
                + self.spec.network_time(remote_bytes, messages=messages)
                + pcie_share)

    def _bill_tiered(self, lookup, row_bytes):
        """Tiered billing with the cold tier split by ownership: local
        cold rows keep the disk path, remote cold rows pay the network
        path.  PCIe is shared by bytes over everything moved, with the
        remainder-style arithmetic ordered so a zero-remote fetch
        reproduces :meth:`TieredCache.bill` bit for bit."""
        cold = lookup.cold_ids
        local_cold, remote_cold = self.shards.split_local_remote(
            self.replica_id, cold)
        self.last_remote_rows = len(remote_cold)
        self.remote_rows += len(remote_cold)
        self.local_rows += lookup.num_hot + lookup.num_warm \
            + len(local_cold)

        warm_bytes = lookup.num_warm * row_bytes
        lcold_bytes = len(local_cold) * row_bytes
        rcold_bytes = len(remote_cold) * row_bytes
        moved = warm_bytes + lcold_bytes + rcold_bytes
        pcie = self.spec.pcie_time(moved) if moved else 0.0
        warm_share = pcie * warm_bytes / moved if moved else 0.0
        nonwarm_share = pcie - warm_share if moved else 0.0
        if rcold_bytes and lcold_bytes:
            remote_share = (nonwarm_share * rcold_bytes
                            / (lcold_bytes + rcold_bytes))
            lcold_share = nonwarm_share - remote_share
        elif rcold_bytes:
            remote_share, lcold_share = nonwarm_share, 0.0
        else:
            remote_share, lcold_share = 0.0, nonwarm_share

        warm_seconds = (self.spec.host_cache_time(warm_bytes)
                        + warm_share) if warm_bytes else 0.0
        lcold_seconds = (self.spec.disk_time(lcold_bytes)
                         + self.spec.gather_time(lcold_bytes)
                         + lcold_share) if lcold_bytes else 0.0
        remote_seconds = self._remote_cost(
            remote_cold, row_bytes, remote_share) if rcold_bytes else 0.0

        self.tier_seconds["warm"] += warm_seconds
        self.tier_seconds["cold"] += lcold_seconds + remote_seconds
        self.remote_seconds += remote_seconds
        self.last_remote_seconds = remote_seconds
        return warm_seconds + lcold_seconds + remote_seconds

    def _bill_flat(self, misses, row_bytes):
        """Flat billing with misses split by ownership (same PCIe
        sharing and zero-remote reduction as the tiered path)."""
        local, remote = self.shards.split_local_remote(
            self.replica_id, misses)
        self.last_remote_rows = len(remote)
        self.remote_rows += len(remote)
        self.local_rows += len(local)

        local_bytes = len(local) * row_bytes
        remote_bytes = len(remote) * row_bytes
        moved = local_bytes + remote_bytes
        self.last_remote_seconds = 0.0
        if moved == 0:
            return 0.0
        pcie = self.spec.pcie_time(moved)
        remote_share = pcie * remote_bytes / moved if remote_bytes \
            else 0.0
        local_share = pcie - remote_share
        local_seconds = (self.spec.gather_time(local_bytes)
                         + local_share) if local_bytes else 0.0
        remote_seconds = self._remote_cost(
            remote, row_bytes, remote_share) if remote_bytes else 0.0
        self.remote_seconds += remote_seconds
        self.last_remote_seconds = remote_seconds
        return local_seconds + remote_seconds


class ReplicaServer:
    """One fleet node: shard executor + micro-batch queue + metrics.

    Parameters
    ----------
    replica_id:
        Shard this node serves (also its index in the fleet).
    shards:
        The shared :class:`~repro.fleet.shards.ShardMap`.
    executor:
        The node's :class:`ShardExecutor` (its ``replica_id`` must
        match).
    policy, max_queue:
        Per-replica :class:`~repro.serve.batcher.BatchPolicy` and
        admission bound, as in ``ServeEngine``.
    seed:
        Base seed; the node's rng is ``default_rng((seed, replica_id))``
        so replicas draw independent, reproducible sampling streams.
    """

    def __init__(self, replica_id, shards, executor, policy=None,
                 max_queue=None, seed=0):
        if executor.replica_id != replica_id:
            raise FleetError(
                f"executor serves shard {executor.replica_id}, "
                f"replica is {replica_id}")
        self.replica_id = int(replica_id)
        self.shards = shards
        self.executor = executor
        self.batcher = MicroBatcher(policy, max_queue)
        self.policy = self.batcher.policy
        self.rng = np.random.default_rng((int(seed), self.replica_id))
        self.metrics = StageProfiler()

        self.free_at = 0.0          # simulated time the node idles again
        self.alive = True           # False while a crash fault holds
        self.active = True          # False while scaled down
        self.draining = False       # scale-down decided, queue emptying

        self.routed = 0
        self.owner_routed = 0
        self.spill_routed = 0
        self.completed = 0
        self.rejected = 0
        self.zero_remote_completed = 0
        self.num_batches = 0
        self.bp_seconds = 0.0
        self.dt_seconds = 0.0
        self.nn_seconds = 0.0
        self.crashes = 0
        self.down_seconds = 0.0

    @property
    def accepting(self):
        """Whether the router may send this node new requests."""
        return self.alive and self.active and not self.draining

    @property
    def queue_depth(self):
        return len(self.batcher)

    def submit(self, request, is_owner):
        """Enqueue one routed request; returns False (and counts a
        rejection) when the admission queue is full."""
        self.routed += 1
        if is_owner:
            self.owner_routed += 1
        else:
            self.spill_routed += 1
        try:
            self.batcher.submit(request)
        except AdmissionError:
            self.rejected += 1
            return False
        self.metrics.observe("queue_depth", len(self.batcher))
        return True

    def next_dispatch_time(self, draining):
        """Earliest simulated time this node can dispatch its next
        batch, or ``None`` when it has nothing to dispatch.  ``draining``
        is the *fleet-wide* no-more-arrivals flag (partial batches then
        flush immediately)."""
        if not self.alive or len(self.batcher) == 0:
            return None
        full = len(self.batcher) >= self.policy.max_batch_size
        if full or draining or self.draining:
            ready_at = 0.0
        else:
            ready_at = self.batcher.oldest_deadline()
        return max(self.free_at, ready_at)

    def dispatch(self, clock, straggle=1.0, slowlink=1.0):
        """Serve one micro-batch at simulated time ``clock``; returns
        the responses (stamped with this replica's id).

        ``straggle`` multiplies the whole service time (a slow node);
        ``slowlink`` scales network bandwidth, stretching this batch's
        remote-fetch seconds by ``1/slowlink``.  Both default to 1.0
        and are only *applied* when they differ — the healthy path's
        float arithmetic is untouched (bit-exact baseline)."""
        batch = self.batcher.take()
        vertices = np.array([r.vertex for r in batch], dtype=np.int64)
        predictions, bp, dt, nn = self.executor.execute(vertices,
                                                        self.rng)
        service = bp + dt + nn
        if slowlink != 1.0:
            service += self.executor.last_remote_seconds \
                * (1.0 / slowlink - 1.0)
        if straggle != 1.0:
            service *= straggle
        completion = clock + service
        self.free_at = completion

        self.num_batches += 1
        self.completed += len(batch)
        self.bp_seconds += bp
        self.dt_seconds += dt
        self.nn_seconds += nn
        if self.executor.last_remote_rows == 0:
            self.zero_remote_completed += len(batch)
        self.metrics.observe("batch_size", len(batch))

        responses = []
        for request, prediction in zip(batch, predictions):
            self.metrics.observe("latency",
                                 completion - request.arrival)
            responses.append(InferenceResponse(
                request=request, prediction=int(prediction),
                completion=completion, batch_id=self.num_batches,
                batch_size=len(batch), replica=self.replica_id))
        return responses

    def crash(self, clock, down_seconds, cold=False):
        """Take the node down at ``clock``; returns the queued requests
        the router must re-route (failover).  ``cold`` drops the
        in-memory cache residency with the process (the fleet's
        recovery layer then re-warms it from a snapshot on rejoin);
        the default keeps PR 7's process-restart semantics."""
        self.alive = False
        self.crashes += 1
        self.down_seconds += down_seconds
        # An in-flight batch is lost with the node; queued-but-unserved
        # requests survive in the router's hands.
        self.free_at = max(self.free_at, clock)
        if cold:
            cache = self.executor.cache
            if isinstance(cache, TieredCache):
                cache.evict_all()
        return self.batcher.drain()

    def recover(self, clock):
        """Bring the node back (empty queue, cache state retained —
        a process restart, not a cold node)."""
        self.alive = True
        self.free_at = max(self.free_at, clock)

    def report(self):
        """This node's :class:`~repro.fleet.metrics.ReplicaReport`."""
        from .metrics import ReplicaReport, _latency_fields

        cache = self.executor.cache
        if isinstance(cache, TieredCache):
            rates = cache.hit_rates()
            hit, hot, warm = rates["hot"], rates["hot"], rates["warm"]
        elif cache is not None:
            hit, hot, warm = cache.hit_rate, cache.hit_rate, 0.0
        else:
            hit = hot = warm = 0.0

        queue = self.metrics.summary("queue_depth")
        return ReplicaReport(
            replica=self.replica_id,
            shard_vertices=int(self.shards.shard_sizes()
                               [self.replica_id]),
            routed=self.routed,
            owner_routed=self.owner_routed,
            spill_routed=self.spill_routed,
            completed=self.completed,
            rejected=self.rejected,
            num_batches=self.num_batches,
            mean_batch_size=(self.completed / self.num_batches
                             if self.num_batches else 0.0),
            **_latency_fields(self.metrics.summary("latency")),
            queue_depth_mean=queue["mean"] if queue else 0.0,
            queue_depth_max=queue["max"] if queue else 0.0,
            bp_seconds=self.bp_seconds,
            dt_seconds=self.dt_seconds,
            nn_seconds=self.nn_seconds,
            local_rows=self.executor.local_rows,
            remote_rows=self.executor.remote_rows,
            remote_seconds=self.executor.remote_seconds,
            zero_remote_completed=self.zero_remote_completed,
            cache_hit_rate=hit,
            hot_hit_rate=hot,
            warm_hit_rate=warm,
            tier_seconds=dict(self.executor.tier_seconds),
            crashes=self.crashes,
            down_seconds=self.down_seconds,
        )

    def __repr__(self):
        state = "alive" if self.alive else "down"
        if not self.active:
            state = "inactive"
        elif self.draining:
            state = "draining"
        return (f"ReplicaServer(id={self.replica_id}, {state}, "
                f"queue={self.queue_depth})")
