"""Fleet resilience: failure detection, circuit breaking, hedging,
crash recovery, and the fault schedule driving chaos runs.

PR 7's fleet detects a crashed replica only when the
:class:`~repro.faults.RetryPolicy` timeout expires — a 10 ms blind spot
during which orphaned requests sit still and the router keeps the dead
node in mind.  This module closes the gap with four cooperating
mechanisms, all on the simulated clock and all **no-ops when not
configured** (the engine's baseline path stays bit-identical):

:class:`FailureDetector`
    A phi-accrual-style heartbeat monitor.  Replicas heartbeat every
    ``heartbeat_interval`` simulated seconds while alive; the suspicion
    level of a silent node is ``phi(t) = t / (interval * ln 10)`` (the
    classic accrual formula for exponential inter-arrivals), and the
    node is *suspected* when ``phi`` crosses ``suspect_phi`` and
    *declared dead* at ``dead_phi``.  Because everything is simulated,
    the detector is evaluated analytically — no per-heartbeat events:
    the last heartbeat before a crash at time ``T`` is the latest
    multiple of the interval, and suspect/dead instants follow in
    closed form.  With the defaults, suspicion lands ~1 ms after a
    crash — an order of magnitude before the 10 ms retry timeout.

:class:`CircuitBreaker`
    Per-replica closed / open / half-open gate fed by the detector: a
    suspected node's breaker *opens* (the router stops offering it
    requests even after the process is technically back), transitions
    to *half-open* after ``reset_timeout``, and closes again after
    ``half_open_successes`` completed batches prove it healthy.

:class:`HedgePolicy`
    Tail-tolerance knobs: once ``min_observations`` latencies are on
    record, any request still unanswered after the observed
    ``delay_quantile`` (default p95) gets a second copy on a different
    replica; the first response wins and the loser is cancelled out of
    its queue (:meth:`~repro.serve.batcher.MicroBatcher.cancel`) or,
    if already served, counted as wasted work.  ``retry_budget`` bounds
    how many times a crash-orphaned request may be re-routed before the
    fleet drops it — amplification control under brownout.

:class:`ReplicaRecovery`
    Deterministic crash recovery built on the hardened
    :class:`~repro.faults.Checkpointer`: the engine snapshots every
    replica's :class:`~repro.transfer.tiered.TieredCache` residency on
    a fixed cadence, a crash cold-starts the cache, and the recovering
    node restores the last committed snapshot
    (:meth:`~repro.faults.Checkpointer.load_latest` falls back to the
    previous generation if the newest save was torn).

:class:`FleetSchedule`
    The fleet-side consumer of the shared fault grammar
    (:meth:`~repro.faults.plan.FaultPlan.parse`): ``crash`` becomes a
    replica outage with a down time, ``straggler``/``slowlink`` become
    service-time windows, and the training-only kinds (``halt``,
    ``flaky``) are rejected with a pointer to ``repro chaos``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CheckpointError, FaultError, FleetError
from ..faults.checkpoint import Checkpointer
from ..faults.plan import FaultPlan
from ..transfer.tiered import TieredCache

__all__ = ["DetectorPolicy", "FailureDetector", "BreakerPolicy",
           "CircuitBreaker", "HedgePolicy", "ResiliencePolicy",
           "ReplicaRecovery", "FleetSchedule"]

_LN10 = math.log(10.0)


# ----------------------------------------------------------------------
# Phi-accrual failure detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DetectorPolicy:
    """Heartbeat failure-detection knobs.

    Attributes
    ----------
    heartbeat_interval:
        Simulated seconds between a healthy replica's heartbeats.
    suspect_phi:
        Accrual suspicion level at which the replica is *suspected*:
        orphans re-route and its circuit breaker opens.  ``phi = 2``
        means "the odds this silence is benign are 1 in 10^2".
    dead_phi:
        Level at which the replica is *declared dead* (autoscaler
        replacement kicks in).  Must exceed ``suspect_phi``.
    """

    heartbeat_interval: float = 2e-4
    suspect_phi: float = 2.0
    dead_phi: float = 4.0

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise FleetError(
                f"heartbeat_interval must be > 0, got "
                f"{self.heartbeat_interval}")
        if self.suspect_phi <= 0:
            raise FleetError(
                f"suspect_phi must be > 0, got {self.suspect_phi}")
        if self.dead_phi <= self.suspect_phi:
            raise FleetError(
                f"dead_phi ({self.dead_phi}) must exceed suspect_phi "
                f"({self.suspect_phi})")

    @property
    def suspect_delay(self):
        """Silence, in seconds, at which ``phi`` reaches
        ``suspect_phi`` (``phi(t) = t / (interval * ln 10)``)."""
        return self.suspect_phi * _LN10 * self.heartbeat_interval

    @property
    def dead_delay(self):
        return self.dead_phi * _LN10 * self.heartbeat_interval


class FailureDetector:
    """Analytic phi-accrual detector over the fleet's replicas.

    Heartbeats are implicit: a replica alive since its ``anchor`` time
    beats at ``anchor + j * interval``; the detector only needs the
    anchor to reconstruct the last beat before any crash instant.  The
    engine asks :meth:`suspect_at` / :meth:`dead_at` when a crash fires
    and schedules the corresponding events — zero per-heartbeat work.
    """

    def __init__(self, policy, num_replicas):
        self.policy = policy
        self._anchor = [0.0] * int(num_replicas)
        self.suspicions = 0
        self.deaths_declared = 0
        self.detection_delays = []

    def heartbeat(self, replica_id, clock):
        """Restart the heartbeat stream (replica up at ``clock``)."""
        self._anchor[replica_id] = float(clock)

    def last_heartbeat(self, replica_id, crash_clock):
        """Latest heartbeat at or before ``crash_clock``."""
        anchor = self._anchor[replica_id]
        interval = self.policy.heartbeat_interval
        beats = max(0, math.floor((crash_clock - anchor) / interval))
        return anchor + beats * interval

    def suspect_at(self, replica_id, crash_clock):
        """Simulated instant a crash at ``crash_clock`` is suspected;
        records the detection delay for the report."""
        last = self.last_heartbeat(replica_id, crash_clock)
        when = last + self.policy.suspect_delay
        # A heartbeat cannot be missed before the crash actually
        # happens; the suspicion follows the crash.
        when = max(when, crash_clock)
        self.detection_delays.append(when - crash_clock)
        return when

    def dead_at(self, replica_id, crash_clock):
        """Instant the same crash escalates to a death declaration."""
        last = self.last_heartbeat(replica_id, crash_clock)
        return max(last + self.policy.dead_delay, crash_clock)

    @property
    def mean_detection_delay(self):
        if not self.detection_delays:
            return None
        return sum(self.detection_delays) / len(self.detection_delays)


# ----------------------------------------------------------------------
# Circuit breaking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerPolicy:
    """Per-replica circuit-breaker knobs.

    Attributes
    ----------
    reset_timeout:
        Simulated seconds an open breaker waits before letting a probe
        through (half-open).
    half_open_successes:
        Completed batches a half-open replica must serve before the
        breaker closes again.
    """

    reset_timeout: float = 2e-3
    half_open_successes: int = 2

    def __post_init__(self):
        if self.reset_timeout <= 0:
            raise FleetError(
                f"reset_timeout must be > 0, got {self.reset_timeout}")
        if self.half_open_successes < 1:
            raise FleetError(
                f"half_open_successes must be >= 1, got "
                f"{self.half_open_successes}")


class CircuitBreaker:
    """Closed / open / half-open gate for one replica.

    The detector trips it (:meth:`trip`); completed batches heal it
    (:meth:`record_success`); the router consults :meth:`allows` —
    which is also where open lapses into half-open once
    ``reset_timeout`` has passed.
    """

    def __init__(self, policy):
        self.policy = policy
        self.state = "closed"
        self.trips = 0
        self.half_opens = 0
        self._opened_at = 0.0
        self._successes = 0

    def trip(self, clock):
        """Open the breaker (detector suspected the replica)."""
        if self.state != "open":
            self.trips += 1
        self.state = "open"
        self._opened_at = float(clock)
        self._successes = 0

    def record_success(self, clock):
        """A batch completed on this replica."""
        if self.state == "half-open":
            self._successes += 1
            if self._successes >= self.policy.half_open_successes:
                self.state = "closed"
                self._successes = 0

    def allows(self, clock):
        """Whether the router may offer this replica a request now."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if clock - self._opened_at >= self.policy.reset_timeout:
                self.state = "half-open"
                self.half_opens += 1
                return True
            return False
        return True  # half-open: probes flow until the verdict


# ----------------------------------------------------------------------
# Hedging + budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HedgePolicy:
    """Hedged-request knobs.

    Attributes
    ----------
    delay_quantile:
        Latency quantile (0, 100) of completed requests after which an
        unanswered request is hedged — the classic "defer to the p95".
    min_delay:
        Floor on the hedge delay (seconds), so early noisy quantile
        estimates cannot hedge everything.
    min_observations:
        Completed-request latencies required before hedging arms.
    """

    delay_quantile: float = 95.0
    min_delay: float = 5e-4
    min_observations: int = 20

    def __post_init__(self):
        if not 0.0 < self.delay_quantile < 100.0:
            raise FleetError(
                f"delay_quantile must be in (0, 100), got "
                f"{self.delay_quantile}")
        if self.min_delay <= 0:
            raise FleetError(
                f"min_delay must be > 0, got {self.min_delay}")
        if self.min_observations < 1:
            raise FleetError(
                f"min_observations must be >= 1, got "
                f"{self.min_observations}")


@dataclass(frozen=True)
class ResiliencePolicy:
    """The fleet's resilience configuration, one knob bundle.

    Every member is optional; ``None`` disables that mechanism and the
    engine's corresponding code path never runs (the PR 7 baseline).
    ``retry_budget`` bounds crash-orphan re-routes per request; a
    request exceeding it is *dropped* (surfaced in the report), which
    caps retry amplification during a brownout.
    """

    detector: DetectorPolicy | None = field(
        default_factory=DetectorPolicy)
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    hedge: HedgePolicy | None = field(default_factory=HedgePolicy)
    retry_budget: int = 3

    def __post_init__(self):
        if self.retry_budget < 1:
            raise FleetError(
                f"retry_budget must be >= 1, got {self.retry_budget}")


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
class ReplicaRecovery:
    """Checkpointer-backed cache snapshots for crash recovery.

    Parameters
    ----------
    root:
        Directory for the per-replica checkpoint files
    snapshot_interval:
        Simulated seconds between fleet-wide cache snapshots.

    The engine drives it: :meth:`save` on the snapshot cadence,
    :meth:`restore` when a crashed replica rejoins.  Restoration uses
    :meth:`~repro.faults.Checkpointer.load_latest`, so a snapshot torn
    by the crash itself falls back to the previous committed one —
    the recovered cache state is always a residency the replica
    actually had, making the post-recovery hit/miss sequence
    deterministic.
    """

    def __init__(self, root, snapshot_interval=2e-3):
        from pathlib import Path
        if snapshot_interval <= 0:
            raise FleetError(
                f"snapshot_interval must be > 0, got "
                f"{snapshot_interval}")
        self.root = Path(root)
        self.snapshot_interval = float(snapshot_interval)
        self._checkpointers = {}
        self.snapshots = 0
        self.recoveries = 0
        self.cold_recoveries = 0

    def _checkpointer(self, replica_id):
        if replica_id not in self._checkpointers:
            self._checkpointers[replica_id] = Checkpointer(
                self.root / f"replica-{replica_id}.ckpt")
        return self._checkpointers[replica_id]

    def save(self, replica, clock):
        """Snapshot ``replica``'s tiered-cache residency at ``clock``;
        a no-op for replicas without a tiered cache."""
        cache = replica.executor.cache
        if not isinstance(cache, TieredCache):
            return False
        self._checkpointer(replica.replica_id).save({
            "clock": float(clock),
            "replica": replica.replica_id,
            "cache": cache.snapshot(),
        })
        self.snapshots += 1
        return True

    def restore(self, replica):
        """Re-warm ``replica``'s cache from its newest valid snapshot;
        returns whether a snapshot was applied (False = cold start)."""
        cache = replica.executor.cache
        if not isinstance(cache, TieredCache):
            return False
        self.recoveries += 1
        try:
            state = self._checkpointer(replica.replica_id).load_latest()
        except CheckpointError:
            self.cold_recoveries += 1
            return False
        cache.restore(state["cache"])
        return True


# ----------------------------------------------------------------------
# Fault schedules on the fleet clock
# ----------------------------------------------------------------------
class FleetSchedule:
    """A :class:`~repro.faults.plan.FaultPlan` compiled for the fleet.

    Shares the spec grammar with ``repro chaos`` (see
    :meth:`FaultPlan.parse`); here times are simulated seconds
    (fractions allowed) and ``worker`` ids name replicas.  Supported
    kinds: ``crash`` (replica down for its duration), ``straggler``
    (service-time multiplier window), ``slowlink`` (network-bandwidth
    multiplier window — remote fetches stretch by ``1/m``).  The
    training-only kinds ``halt`` and ``flaky`` are rejected.
    """

    _FLEET_KINDS = ("crash", "straggler", "slowlink")

    def __init__(self, plan, num_replicas):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if not isinstance(plan, FaultPlan):
            raise FaultError(
                f"FleetSchedule needs a FaultPlan or spec string, got "
                f"{type(plan).__name__}")
        self.plan = plan
        self.num_replicas = int(num_replicas)
        self.crashes = []
        self._straggles = []
        self._slowlinks = []
        for event in plan:
            if event.kind not in self._FLEET_KINDS:
                raise FaultError(
                    f"fault {event.describe()!r} is training-only "
                    f"(epoch clock); the fleet schedule supports "
                    f"{self._FLEET_KINDS} — use `repro chaos` for the "
                    f"rest")
            if event.worker is not None \
                    and event.worker >= self.num_replicas:
                raise FleetError(
                    f"fault {event.describe()!r} names replica "
                    f"{event.worker}; the fleet has "
                    f"{self.num_replicas}")
            start = float(event.epoch)
            duration = float(event.duration)
            if event.kind == "crash":
                self.crashes.append((start, event.worker, duration))
            elif event.kind == "straggler":
                self._straggles.append(
                    (start, start + duration, event.worker,
                     float(event.magnitude)))
            else:
                self._slowlinks.append(
                    (start, start + duration, float(event.magnitude)))
        self.crashes.sort()
        self._straggles.sort()
        self._slowlinks.sort()

    def multipliers(self, replica_id, clock):
        """``(straggle, slowlink)`` multipliers active for
        ``replica_id`` at simulated time ``clock`` — both 1.0 outside
        any window, so billing is untouched on the healthy path."""
        straggle = 1.0
        for start, end, worker, magnitude in self._straggles:
            if worker == replica_id and start <= clock < end:
                straggle *= magnitude
        slowlink = 1.0
        for start, end, magnitude in self._slowlinks:
            if start <= clock < end:
                slowlink *= magnitude
        return straggle, slowlink

    def describe(self):
        return self.plan.describe()

    def __len__(self):
        return len(self.plan)
