"""Fleet metrics: one report per replica, aggregated into one per run.

Each :class:`~repro.fleet.replica.ReplicaServer` records its own
latency/batch/queue distributions on a private
:class:`~repro.perf.StageProfiler`; the fleet engine merges them
(:meth:`~repro.perf.StageProfiler.merge`) so fleet-wide percentiles
are computed over the union of every replica's observations — not
averaged averages.

Zero-traffic replicas are a real state (a cold standby the autoscaler
never activated, a shard the load never touched): their latency fields
are ``None`` and serialize as JSON ``null``, never a fabricated zero —
see :func:`repro.perf.profiler.percentile`'s ``default`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ReplicaReport", "FleetReport"]


def _latency_fields(summary):
    """Map a :meth:`StageProfiler.summary` digest (or ``None`` for a
    zero-traffic entity) onto the five latency fields."""
    if summary is None:
        return {"latency_mean": None, "latency_p50": None,
                "latency_p95": None, "latency_p99": None,
                "latency_max": None}
    return {"latency_mean": summary["mean"],
            "latency_p50": summary["p50"],
            "latency_p95": summary["p95"],
            "latency_p99": summary["p99"],
            "latency_max": summary["max"]}


@dataclass
class ReplicaReport:
    """Everything one replica measured over a fleet run.

    Latency fields are ``None`` (JSON ``null``) when the replica
    completed no requests.  ``remote_rows`` counts rows actually
    fetched from other shards over the network (a foreign row already
    resident in the local cache is not a remote fetch);
    ``local_rows`` counts rows resolved on-node (owned or cached).
    """

    replica: int
    shard_vertices: int
    routed: int                    # requests the router sent here
    owner_routed: int              # ... because this shard owns them
    spill_routed: int              # ... by spillover/failover
    completed: int
    rejected: int
    num_batches: int
    mean_batch_size: float
    latency_mean: float | None
    latency_p50: float | None
    latency_p95: float | None
    latency_p99: float | None
    latency_max: float | None
    queue_depth_mean: float
    queue_depth_max: float
    bp_seconds: float
    dt_seconds: float
    nn_seconds: float
    local_rows: int
    remote_rows: int
    remote_seconds: float          # network share of dt_seconds
    zero_remote_completed: int     # requests answered w/o remote rows
    cache_hit_rate: float
    hot_hit_rate: float
    warm_hit_rate: float
    tier_seconds: dict = field(default_factory=dict)
    crashes: int = 0
    down_seconds: float = 0.0

    def to_dict(self):
        """JSON-serializable summary."""
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}


@dataclass
class FleetReport:
    """One sharded-serving run, in simulated seconds.

    ``routing_locality`` is the fraction of completed requests answered
    with **zero remote rows** — the headline §5-style metric: it is
    what partition-aware routing buys over random dispatch.
    ``remote_row_fraction`` is the row-level companion (remote rows /
    all rows fetched).  Fleet latency percentiles are computed over the
    merged per-replica observation lists.
    """

    mode: str
    policy: str
    partitioner: str
    num_replicas: int
    num_requests: int
    completed: int
    rejected: int
    spillovers: int
    failovers: int
    requeued: int                  # failover re-submissions after crash
    duration_seconds: float
    throughput: float
    latency_mean: float | None
    latency_p50: float | None
    latency_p95: float | None
    latency_p99: float | None
    latency_max: float | None
    bp_seconds: float
    dt_seconds: float
    nn_seconds: float
    remote_seconds: float
    precompute_seconds: float
    accuracy: float
    routing_locality: float
    remote_row_fraction: float
    cache_hit_rate: float
    hot_hit_rate: float
    warm_hit_rate: float
    cache_policy: str = "lru"
    scale_events: list = field(default_factory=list)
    replicas_active_max: int = 0
    dropped: int = 0               # lost outright: unroutable or over
    #                                the retry budget (subset of
    #                                ``rejected``); their ids are kept
    dropped_request_ids: list = field(default_factory=list)
    replication_factor: float = 1.0
    resilience: dict | None = None  # detector/hedge/breaker/recovery
    #                                 counters; None on baseline runs
    replicas: list = field(default_factory=list)
    responses: list = field(repr=False, default_factory=list)

    @property
    def reject_rate(self):
        return self.rejected / self.num_requests \
            if self.num_requests else 0.0

    @property
    def drop_rate(self):
        return self.dropped / self.num_requests \
            if self.num_requests else 0.0

    def breakdown(self):
        """Serving-time shares of the three data-management steps,
        with the network share of data transferring split out (the
        routing cost the fleet exists to manage)."""
        total = self.bp_seconds + self.dt_seconds + self.nn_seconds
        if total == 0:
            return {"batch_preparation": 0.0, "data_transferring": 0.0,
                    "nn_computation": 0.0, "remote_transfer": 0.0}
        return {
            "batch_preparation": self.bp_seconds / total,
            "data_transferring": self.dt_seconds / total,
            "nn_computation": self.nn_seconds / total,
            "remote_transfer": self.remote_seconds / total,
        }

    def to_dict(self):
        """JSON-serializable summary (responses omitted; replica
        reports inlined)."""
        out = {name: getattr(self, name)
               for name in self.__dataclass_fields__
               if name not in ("responses", "replicas")}
        out["reject_rate"] = self.reject_rate
        out["drop_rate"] = self.drop_rate
        out["breakdown"] = self.breakdown()
        out["replicas"] = [r.to_dict() for r in self.replicas]
        return out
