"""Sharded multi-replica serving with partition-aware routing.

The fleet tier scales the single-server serving engine
(:mod:`repro.serve`) out: a graph partition from
:mod:`repro.partition` assigns every vertex an owning shard, each
shard is served by one :class:`~repro.fleet.replica.ReplicaServer`
(its own micro-batch queue, cache hierarchy, and seeded sampling
stream), and a :class:`~repro.fleet.router.Router` dispatches each
request to the replica owning its seed vertex — spilling to the
least-loaded survivor (remote-fetch penalty included) when the owner
is saturated, crashed, or drained away by the queue-depth
:class:`~repro.fleet.router.Autoscaler`.

Rows a replica does not own are billed over the cluster network
through :class:`~repro.fleet.replica.ShardExecutor`, so the paper's
partition-quality story (edge cut → communication volume) becomes a
serving-latency story: better partitions → higher routing locality →
fewer remote rows → flatter tails.  In ``precomputed`` mode the
fleet's answers are bit-identical to the single server's for the same
trace (row-wise evaluation makes answers batching-invariant), which
``benchmarks/bench_fleet.py`` asserts as its exact-match invariant.

:mod:`repro.fleet.resilience` layers availability on top: phi-accrual
failure detection, k-replicated shard ownership, circuit breakers,
hedged requests, retry budgets, and checkpointed cache recovery — all
off by default and certified under composable fault schedules by
``benchmarks/bench_fleet_chaos.py`` / ``repro fleet-chaos``.
"""

from .engine import FleetEngine
from .metrics import FleetReport, ReplicaReport
from .replica import ReplicaServer, ShardExecutor
from .resilience import (BreakerPolicy, CircuitBreaker, DetectorPolicy,
                         FailureDetector, FleetSchedule, HedgePolicy,
                         ReplicaRecovery, ResiliencePolicy)
from .router import Autoscaler, AutoscalePolicy, Router, RoutingPolicy
from .shards import ShardMap

__all__ = [
    "FleetEngine", "FleetReport", "ReplicaReport", "ReplicaServer",
    "ShardExecutor", "ShardMap", "Router", "RoutingPolicy",
    "Autoscaler", "AutoscalePolicy",
    "DetectorPolicy", "FailureDetector", "BreakerPolicy",
    "CircuitBreaker", "HedgePolicy", "ResiliencePolicy",
    "ReplicaRecovery", "FleetSchedule",
]

from .bench import run_fleet_bench  # noqa: E402  (engine types first)
from .chaos import run_fleet_chaos_bench  # noqa: E402

__all__ += ["run_fleet_bench", "run_fleet_chaos_bench"]
