"""The sharded-serving benchmark: scaling, locality, elasticity.

Trains a small model, generates one shared Zipf-skewed trace at a
multiple of the single-server benchmark's base rate (the fleet exists
for load one node cannot hold), then measures:

* **scaling** — p50/p95/p99 latency and throughput vs replica count
  (the tail must *strictly improve* from 1 to 4 replicas under load);
* **locality** — the fraction of requests answered with zero remote
  rows, per partitioner: the serving-side readout of edge-cut quality
  (hash vs the Metis family);
* **elasticity** — a queue-depth autoscaling run and a crash-failover
  run, demonstrating the active replica set following load and the
  router surviving a dead node.

Every run checks the fleet's core invariant: for the same trace, a
multi-replica fleet in ``precomputed`` mode must produce
**bit-identical predictions** to the single-server
:class:`~repro.serve.engine.ServeEngine` — routing, spillover, and
re-batching may change *when* an answer is computed, never *what* it
is.  Shared by ``repro fleet-bench`` and
``benchmarks/bench_fleet.py`` (which writes ``BENCH_fleet.json``).
"""

from __future__ import annotations

import numpy as np

from ..core import Trainer
from ..core.config import TrainingConfig, make_partitioner
from ..errors import ServingError
from ..graph import load_dataset
from ..serve.batcher import BatchPolicy
from ..serve.engine import ServeEngine
from ..serve.precompute import LayerwiseEmbeddings
from ..serve.requests import LoadGenerator
from .engine import FleetEngine
from .router import AutoscalePolicy, RoutingPolicy

__all__ = ["run_fleet_bench", "QUICK_OVERRIDES"]

#: Parameter overrides for smoke runs (CI, ``--quick``).
QUICK_OVERRIDES = dict(scale=0.15, train_epochs=1, num_requests=160,
                       rate_multiplier=20.0, replica_counts=(1, 2),
                       locality_partitioners=("hash", "metis-v"))


def _partition(name, data, num_parts, seed):
    """One seeded partition of the benchmark graph."""
    return make_partitioner(name).partition(
        data.graph, num_parts, split=data.split,
        rng=np.random.default_rng(seed))


def _scaling_row(report):
    """The scaling-sweep fields of one fleet report."""
    out = report.to_dict()
    del out["replicas"]
    del out["scale_events"]
    return out


def run_fleet_bench(dataset="ogb-arxiv", scale=0.3, model="gcn",
                    train_epochs=2, fanout=(10, 10), base_rate=2000.0,
                    rate_multiplier=100.0, num_requests=2000,
                    skew=0.8, seed=0, replica_counts=(1, 2, 4, 8),
                    partitioner="metis-v",
                    locality_partitioners=("hash", "metis-v",
                                           "metis-ve", "metis-vet"),
                    batch_size=16, max_wait=0.0005, cache_policy="lfu",
                    cache_ratio=0.1, warm_ratio=0.1, max_queue=512,
                    spill_threshold=64, remote_penalty=8.0,
                    quick=False):
    """Run the full fleet sweep; returns a JSON-serializable dict.

    ``rate_multiplier`` scales the single-server benchmark's
    ``base_rate`` (2000 req/s): the trace arrives at
    ``base_rate * rate_multiplier`` so one replica saturates and the
    replica-count sweep has a queueing story to tell.  ``quick=True``
    applies :data:`QUICK_OVERRIDES` for a fast smoke.
    """
    if quick:
        scale = QUICK_OVERRIDES["scale"]
        train_epochs = QUICK_OVERRIDES["train_epochs"]
        num_requests = QUICK_OVERRIDES["num_requests"]
        rate_multiplier = QUICK_OVERRIDES["rate_multiplier"]
        replica_counts = QUICK_OVERRIDES["replica_counts"]
        locality_partitioners = \
            QUICK_OVERRIDES["locality_partitioners"]
    if rate_multiplier < 1:
        raise ServingError(
            f"rate_multiplier must be >= 1, got {rate_multiplier}")
    if len(replica_counts) < 1:
        raise ServingError("need at least one replica count")

    data = load_dataset(dataset, scale=scale)
    result = Trainer(data, TrainingConfig(
        model=model, epochs=train_epochs, num_workers=2,
        batch_size=256, fanout=tuple(fanout), seed=seed)).run()
    trained = result.model

    rate = base_rate * rate_multiplier
    trace = LoadGenerator(data.test_ids, rate=rate,
                          num_requests=num_requests, seed=seed,
                          skew=skew).generate()
    embeddings = LayerwiseEmbeddings(trained, data.graph,
                                     data.features)
    policy = BatchPolicy(max_batch_size=int(batch_size),
                         max_wait=float(max_wait))
    routing = RoutingPolicy(spill_threshold=int(spill_threshold),
                            remote_penalty=float(remote_penalty))
    common = dict(mode="precomputed", policy=policy,
                  max_queue=max_queue, cache_policy=cache_policy,
                  cache_ratio=cache_ratio, warm_ratio=warm_ratio,
                  seed=seed, embeddings=embeddings)

    # ------------------------------------------------------------------
    # Invariant: fleet answers == single-server answers, bit for bit.
    # The reference is a plain ServeEngine on the same trace; the fleet
    # runs with spillover enabled at the widest replica count, so the
    # check covers re-batched, spilled, and owner-routed requests.
    # ------------------------------------------------------------------
    single = ServeEngine(data, trained, mode="precomputed",
                         policy=policy, max_queue=max_queue,
                         cache_policy=cache_policy,
                         cache_ratio=cache_ratio,
                         warm_ratio=warm_ratio, seed=seed,
                         embeddings=embeddings).run(trace)
    widest = max(replica_counts)
    fleet_probe = FleetEngine(
        data, trained,
        partition=_partition(partitioner, data, widest, seed),
        routing=routing, **common).run(trace)
    reference = {r.request.request_id: r.prediction
                 for r in single.responses}
    exact = (len(fleet_probe.responses) == len(single.responses)
             and all(reference[r.request.request_id] == r.prediction
                     for r in fleet_probe.responses))
    if not exact:
        raise ServingError(
            "fleet predictions diverged from the single-server "
            "reference (bit-match invariant violated)")

    # ------------------------------------------------------------------
    # Scaling sweep: latency/throughput vs replica count.
    # ------------------------------------------------------------------
    scaling = []
    p99_by_count = {}
    for count in replica_counts:
        report = FleetEngine(
            data, trained,
            partition=_partition(partitioner, data, count, seed),
            routing=routing, **common).run(trace)
        p99_by_count[count] = report.latency_p99
        scaling.append(_scaling_row(report))
    p99_improves = (1 in p99_by_count and 4 in p99_by_count
                    and p99_by_count[4] < p99_by_count[1])

    # ------------------------------------------------------------------
    # Locality sweep: routing locality per partitioner, precomputed
    # (table rows move; owner routing keeps them local) and sampled
    # (the seed's L-hop halo moves; run cache-less so the remote-row
    # fraction reads the partition's edge cut directly rather than
    # whatever the cache happened to absorb).
    # ------------------------------------------------------------------
    locality_count = max(c for c in replica_counts) if quick \
        else max(c for c in replica_counts if c <= 4)
    locality = []
    for name in locality_partitioners:
        part = _partition(name, data, locality_count, seed)
        for mode in ("precomputed", "sampled"):
            kwargs = dict(common, mode=mode)
            if mode == "sampled":
                kwargs.update(embeddings=None, cache_ratio=0.0,
                              warm_ratio=0.0)
            report = FleetEngine(data, trained, partition=part,
                                 fanout=tuple(fanout),
                                 routing=routing, **kwargs).run(trace)
            locality.append({
                "partitioner": name,
                "mode": mode,
                "num_replicas": locality_count,
                "routing_locality": report.routing_locality,
                "remote_row_fraction": report.remote_row_fraction,
                "remote_seconds": report.remote_seconds,
                "spillovers": report.spillovers,
                "latency_p99": report.latency_p99,
            })

    # ------------------------------------------------------------------
    # Elasticity: queue-depth autoscaling from min_replicas=1, and a
    # mid-run crash of the busiest replica with router failover.
    # ------------------------------------------------------------------
    elastic_part = _partition(partitioner, data, locality_count, seed)
    autoscale_report = FleetEngine(
        data, trained, partition=elastic_part, routing=routing,
        autoscale=AutoscalePolicy(min_replicas=1,
                                  high_watermark=float(max_queue) / 8,
                                  low_watermark=2.0,
                                  cooldown=20.0 / rate),
        **common).run(trace)

    crash_at = trace[len(trace) // 3].arrival
    failover_report = FleetEngine(
        data, trained, partition=elastic_part, routing=routing,
        crashes=((crash_at, 0, 50.0 / rate),),
        **common).run(trace)

    return {
        "dataset": data.name,
        "scale": scale,
        "model": model,
        "train_epochs": train_epochs,
        "test_accuracy": result.test_accuracy,
        "load": {"base_rate": base_rate,
                 "rate_multiplier": rate_multiplier, "rate": rate,
                 "num_requests": num_requests, "skew": skew,
                 "seed": seed},
        "batching": policy.describe(),
        "routing": {"spill_threshold": spill_threshold,
                    "remote_penalty": remote_penalty},
        "cache": {"policy": cache_policy, "hot_ratio": cache_ratio,
                  "warm_ratio": warm_ratio},
        "partitioner": partitioner,
        "invariant_exact_match": exact,
        "p99_improves_1_to_4": p99_improves,
        "scaling": scaling,
        "locality": locality,
        "autoscale": {
            "scale_events": autoscale_report.scale_events,
            "replicas_active_max":
                autoscale_report.replicas_active_max,
            "latency_p99": autoscale_report.latency_p99,
            "completed": autoscale_report.completed,
        },
        "failover": {
            "failovers": failover_report.failovers,
            "requeued": failover_report.requeued,
            "completed": failover_report.completed,
            "rejected": failover_report.rejected,
            "crashes": 1,
            "latency_p99": failover_report.latency_p99,
        },
    }
