"""Shard-ownership and halo-set queries over a partition.

A serving fleet assigns one graph shard per replica, produced by any
:mod:`repro.partition` backend (hash, Metis-V/VE/VET, streaming).
:class:`ShardMap` is the read side of that assignment: *who owns
vertex v* (the router's per-request question), *which rows does shard
p hold locally*, and *which foreign rows does shard p's L-hop
neighborhood reach* — the **halo set**, the rows a replica must fetch
from other shards (or replicate) to answer multi-hop queries about its
own vertices.  This is the paper's §5 partitioning/communication model
re-used as a *routing* cost model: a request routed to the owner of
its seed touches remote rows only through the halo, so edge-cut
quality translates directly into serving network traffic.

Halos follow **in**-edges: a GNN layer aggregates a vertex's
in-neighbors, so serving vertex ``v`` at depth L needs the in-L-hop
neighborhood of ``v``.
"""

from __future__ import annotations

import numpy as np

from ..errors import FleetError
from ..partition.base import PartitionResult

__all__ = ["ShardMap"]


class ShardMap:
    """Ownership/halo view of one :class:`PartitionResult`.

    Parameters
    ----------
    partition:
        The partition assigning every vertex an owning shard; shard ids
        double as replica ids in the fleet.
    graph:
        The :class:`~repro.graph.csr.CSRGraph` being sharded (needed
        for halo/neighborhood queries; ownership queries work without
        touching it).
    """

    def __init__(self, partition, graph):
        if not isinstance(partition, PartitionResult):
            raise FleetError(
                f"ShardMap needs a PartitionResult, got "
                f"{type(partition).__name__}")
        if graph.num_vertices != partition.num_vertices:
            raise FleetError(
                f"partition covers {partition.num_vertices} vertices "
                f"but the graph has {graph.num_vertices}")
        self.partition = partition
        self.graph = graph
        self.assignment = partition.assignment
        self.num_shards = partition.num_parts
        self._halos = {}

    @property
    def num_vertices(self):
        return len(self.assignment)

    @property
    def replicated(self):
        """Whether the partition carries a replica matrix (k-redundant
        ownership or SALIENT++ hot-set caching)."""
        return self.partition.replicas is not None

    def replication_factor(self):
        """Average holders per vertex (1.0 = owner-only)."""
        return self.partition.replication_factor()

    def owner(self, vertices):
        """Owning shard of ``vertices`` (scalar in, scalar out)."""
        return self.partition.owner(vertices)

    def holders(self, vertex):
        """Every shard holding ``vertex``'s row locally, owner first,
        backups in ascending shard id.  Without a replica matrix this
        is just ``[owner]`` — the single-owner fleet."""
        owner = self.partition.owner(vertex)
        if not self.replicated:
            return [owner]
        held = np.flatnonzero(self.partition.replicas[:, int(vertex)])
        return [owner] + [int(s) for s in held if s != owner]

    def backups(self, vertex):
        """The non-owner shards holding ``vertex`` (ascending ids)."""
        return self.holders(vertex)[1:]

    def shard_vertices(self, shard):
        """Vertex ids owned by ``shard`` (sorted ascending)."""
        self._check_shard(shard)
        return self.partition.part_vertices(shard)

    def shard_sizes(self):
        """Owned-vertex counts per shard, ``int64 (k,)``."""
        return self.partition.sizes()

    def remote_mask(self, shard, vertices):
        """Boolean array: must a replica serving ``shard`` fetch each
        vertex from another shard (not owned there and, when the
        partition replicates rows, not held as a backup copy either)?
        Without a replica matrix this is exactly the ownership test —
        the single-owner fleet's billing path, unchanged."""
        self._check_shard(shard)
        vertices = np.asarray(vertices, dtype=np.int64)
        if self.partition.replicas is None:
            return self.assignment[vertices] != shard
        return ~self.partition.is_local(shard, vertices)

    def split_local_remote(self, shard, vertices):
        """Partition ``vertices`` into ``(local, remote)`` id arrays by
        ownership on ``shard`` (order within each side preserved)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        remote = self.remote_mask(shard, vertices)
        return vertices[~remote], vertices[remote]

    def halo(self, shard, hops=1):
        """Foreign vertex ids within ``hops`` in-edge steps of
        ``shard``'s owned set (sorted ascending; never includes owned
        vertices).  Memoized per ``(shard, hops)``: the fleet asks for
        every batch, the BFS runs once."""
        self._check_shard(shard)
        if hops < 0:
            raise FleetError(f"hops must be >= 0, got {hops}")
        key = (int(shard), int(hops))
        if key not in self._halos:
            self._halos[key] = self._compute_halo(shard, hops)
        return self._halos[key]

    def _compute_halo(self, shard, hops):
        in_indptr, in_indices = self.graph.in_csr()
        reached = self.assignment == shard
        owned = reached.copy()
        frontier = np.flatnonzero(reached)
        for _ in range(hops):
            if len(frontier) == 0:
                break
            counts = in_indptr[frontier + 1] - in_indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            # Gather the concatenated in-neighbor lists of the
            # frontier: element j of the output, falling in frontier
            # group g at within-group offset o, reads
            # in_indices[starts[g] + o].
            starts = in_indptr[frontier]
            group_base = np.concatenate(
                [[0], np.cumsum(counts)[:-1]])
            offsets = (np.repeat(starts - group_base, counts)
                       + np.arange(total, dtype=np.int64))
            neighbors = in_indices[offsets]
            new = np.unique(neighbors[~reached[neighbors]])
            reached[new] = True
            frontier = new
        return np.flatnonzero(reached & ~owned)

    def locality(self, shard, vertices):
        """Fraction of ``vertices`` owned by ``shard`` (1.0 for an
        empty query — nothing had to move)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            return 1.0
        return float((~self.remote_mask(shard, vertices)).mean())

    def _check_shard(self, shard):
        if not 0 <= shard < self.num_shards:
            raise FleetError(
                f"shard {shard} out of range [0, {self.num_shards})")

    def __repr__(self):
        return (f"ShardMap(shards={self.num_shards}, "
                f"vertices={self.num_vertices}, "
                f"method={self.partition.method!r})")
