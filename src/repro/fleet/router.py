"""Partition-aware request routing and queue-depth autoscaling.

The router is the fleet's front door.  Its placement rule is the
serving-side reading of the paper's partitioning findings: features
live where the partitioner put them, so the cheapest node to answer a
query about vertex ``v`` is the one owning ``v``'s shard — any other
node pays remote fetches for every row the local cache cannot cover.
The router therefore dispatches to the owner until the owner's queue
says otherwise:

* **owner-first** — the owning replica, whenever it is accepting and
  its queue is below ``spill_threshold``;
* **spillover** — otherwise the accepting replica minimizing
  ``queue_depth + remote_penalty`` (the penalty prices the remote
  fetches a non-owner will incur, in queue-slot units; the owner
  itself competes without penalty, so a merely-busy owner usually
  still wins);
* **failover** — a dead/draining owner is just the spillover case with
  the owner out of the candidate set; if *no* replica is accepting the
  request is unroutable and the fleet engine counts it rejected.

Autoscaling runs on the same queue-depth signal with hysteresis: scale
up when the mean depth across active replicas crosses
``high_watermark``, scale down below ``low_watermark``, never twice
within ``cooldown`` simulated seconds.  Scale-down drains: the victim
stops accepting, serves out its queue, then deactivates — its shard is
served remotely by the survivors until load returns.  Shards are
fixed; only the *active replica set* changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FleetError

__all__ = ["RoutingPolicy", "Router", "AutoscalePolicy", "Autoscaler"]


@dataclass(frozen=True)
class RoutingPolicy:
    """The two routing knobs.

    Attributes
    ----------
    spill_threshold:
        Owner queue depth at which requests overflow to other replicas;
        ``None`` disables spillover (strict owner routing — requests
        wait however long the owner's queue is).
    remote_penalty:
        Cost, in queue-depth units, a non-owner replica is charged when
        competing for a spilled request — the queueing-time equivalent
        of the remote rows it would fetch.
    """

    spill_threshold: int | None = None
    remote_penalty: float = 8.0

    def __post_init__(self):
        if self.spill_threshold is not None and self.spill_threshold < 1:
            raise FleetError(
                f"spill_threshold must be >= 1 or None, got "
                f"{self.spill_threshold}")
        if self.remote_penalty < 0:
            raise FleetError(
                f"remote_penalty must be >= 0, got "
                f"{self.remote_penalty}")


class Router:
    """Stateless-per-request dispatcher over the fleet's replicas.

    Parameters
    ----------
    shards:
        The fleet's :class:`~repro.fleet.shards.ShardMap` (owner
        queries).
    replicas:
        ``replicas[i]`` serves shard ``i``.
    policy:
        A :class:`RoutingPolicy`; default is owner-first with no
        spillover.
    """

    def __init__(self, shards, replicas, policy=None, breakers=None):
        if len(replicas) != shards.num_shards:
            raise FleetError(
                f"{len(replicas)} replicas for {shards.num_shards} "
                f"shards; the fleet needs exactly one per shard")
        self.shards = shards
        self.replicas = list(replicas)
        self.policy = policy or RoutingPolicy()
        self.breakers = breakers
        self.spillovers = 0
        self.failovers = 0
        self.backup_routed = 0

    def _admits(self, replica, now):
        """Accepting, and (when circuit breakers are wired in) the
        replica's breaker lets a request through at ``now``."""
        if not replica.accepting:
            return False
        if self.breakers is not None \
                and not self.breakers[replica.replica_id].allows(now):
            return False
        return True

    def _cheapest(self, candidates, owner, vertex=None):
        """The accepting replica minimizing penalized queue depth
        (owner exempt from the penalty; ties break toward lower id).
        With a replicated partition, backup holders of ``vertex`` are
        also exempt — their copy of the row makes them as cheap as the
        owner."""
        penalty = self.policy.remote_penalty
        if vertex is not None and getattr(self.shards, "replicated",
                                          False):
            holders = set(self.shards.holders(vertex))

            def cost(r):
                free = r is owner or r.replica_id in holders
                return (r.queue_depth + (0.0 if free else penalty),
                        r.replica_id)
        else:
            def cost(r):
                return (r.queue_depth
                        + (0.0 if r is owner else penalty),
                        r.replica_id)
        return min(candidates, key=cost)

    def route(self, request, now=0.0):
        """Pick ``(replica, is_owner)`` for one request.  Raises
        :class:`~repro.errors.FleetError` when no replica is accepting
        (every node crashed or drained away) — the error message names
        the request id so the engine can surface dropped requests."""
        owner = self.replicas[self.shards.owner(request.vertex)]
        candidates = [r for r in self.replicas if self._admits(r, now)]
        if not candidates:
            raise FleetError(
                f"request {request.request_id} is unroutable: no "
                f"replica is accepting")

        if owner in candidates:
            threshold = self.policy.spill_threshold
            if threshold is None or owner.queue_depth < threshold:
                return owner, True
            chosen = self._cheapest(candidates, owner, request.vertex)
            if chosen is not owner:
                self.spillovers += 1
            return chosen, chosen is owner

        # Owner down, draining, or circuit-broken: failover to the
        # cheapest survivor — a backup holder of the vertex when the
        # partition replicates rows (it serves from its local copy).
        chosen = self._cheapest(candidates, owner, request.vertex)
        self.failovers += 1
        if getattr(self.shards, "replicated", False) \
                and chosen.replica_id in self.shards.backups(
                    request.vertex):
            self.backup_routed += 1
        return chosen, False

    def route_hedge(self, request, exclude, now=0.0):
        """Route a hedge copy of ``request`` to a replica *not* in
        ``exclude`` (the ids already holding a copy); returns
        ``(replica, is_owner)`` or ``None`` when no distinct replica
        can take it (never raises — a hedge is opportunistic)."""
        owner = self.replicas[self.shards.owner(request.vertex)]
        candidates = [r for r in self.replicas
                      if r.replica_id not in exclude
                      and self._admits(r, now)]
        if not candidates:
            return None
        chosen = self._cheapest(candidates, owner, request.vertex)
        if getattr(self.shards, "replicated", False) \
                and chosen.replica_id in self.shards.backups(
                    request.vertex):
            self.backup_routed += 1
        return chosen, chosen is owner


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-depth autoscaling with hysteresis.

    Attributes
    ----------
    min_replicas:
        Floor on the active replica set (also the initial size:
        replicas ``min_replicas..k-1`` start deactivated).
    high_watermark, low_watermark:
        Mean queue depth (over active, alive replicas) above which the
        fleet scales up / below which it scales down.  Keeping
        ``high > low`` is the hysteresis band preventing flapping.
    cooldown:
        Minimum simulated seconds between scaling decisions.
    """

    min_replicas: int = 1
    high_watermark: float = 24.0
    low_watermark: float = 2.0
    cooldown: float = 0.05

    def __post_init__(self):
        if self.min_replicas < 1:
            raise FleetError(
                f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.low_watermark < 0:
            raise FleetError(
                f"low_watermark must be >= 0, got {self.low_watermark}")
        if self.high_watermark <= self.low_watermark:
            raise FleetError(
                f"high_watermark ({self.high_watermark}) must exceed "
                f"low_watermark ({self.low_watermark})")
        if self.cooldown < 0:
            raise FleetError(
                f"cooldown must be >= 0, got {self.cooldown}")


class Autoscaler:
    """Drives the active replica set from the queue-depth signal.

    The fleet engine calls :meth:`evaluate` after admitting arrivals
    and :meth:`finalize_drains` after dispatching, both with the
    simulated clock.  Every decision lands in ``events`` as
    ``(time, action, replica_id, mean_depth)`` for the report.
    """

    def __init__(self, policy, replicas):
        self.policy = policy
        self.replicas = list(replicas)
        if policy.min_replicas > len(self.replicas):
            raise FleetError(
                f"min_replicas {policy.min_replicas} exceeds the "
                f"fleet size {len(self.replicas)}")
        for replica in self.replicas[policy.min_replicas:]:
            replica.active = False
        self.events = []
        self._last_change = 0.0
        self.active_max = policy.min_replicas

    def _mean_depth(self, live):
        return sum(r.queue_depth for r in live) / len(live)

    def evaluate(self, clock):
        """One scaling decision at simulated time ``clock`` (at most
        one replica activated or marked draining per call)."""
        live = [r for r in self.replicas
                if r.alive and r.active and not r.draining]
        if not live:
            return
        if clock - self._last_change < self.policy.cooldown:
            return
        depth = self._mean_depth(live)

        if depth > self.policy.high_watermark:
            for replica in self.replicas:
                if replica.alive and not replica.active:
                    replica.active = True
                    replica.draining = False
                    self._last_change = clock
                    self.events.append(
                        (clock, "up", replica.replica_id, depth))
                    self.active_max = max(
                        self.active_max,
                        sum(1 for r in self.replicas if r.active))
                    return
        elif depth < self.policy.low_watermark \
                and len(live) > self.policy.min_replicas:
            victim = live[-1]  # highest id drains first
            victim.draining = True
            self._last_change = clock
            self.events.append(
                (clock, "drain", victim.replica_id, depth))

    def replace(self, clock, dead_id):
        """Activate a standby to cover a replica declared dead by the
        failure detector; returns whether one was available.  Recorded
        as a ``"replace"`` event (fourth field = the dead replica)."""
        for replica in self.replicas:
            if replica.alive and not replica.active:
                replica.active = True
                replica.draining = False
                self.events.append(
                    (clock, "replace", replica.replica_id,
                     float(dead_id)))
                self.active_max = max(
                    self.active_max,
                    sum(1 for r in self.replicas if r.active))
                return True
        return False

    def finalize_drains(self, clock):
        """Deactivate any draining replica whose queue has emptied."""
        for replica in self.replicas:
            if replica.draining and replica.queue_depth == 0:
                replica.draining = False
                replica.active = False
                self.events.append(
                    (clock, "down", replica.replica_id, 0.0))
