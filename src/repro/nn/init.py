"""Parameter initializers."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["xavier_uniform", "zeros"]


def xavier_uniform(fan_in, fan_out, rng):
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out)
    weight matrix."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-bound, bound, size=(fan_in, fan_out))
    return Tensor(data.astype(np.float32), requires_grad=True)


def zeros(*shape):
    """Zero-initialized trainable tensor (biases)."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True)
