"""Losses and classification metrics."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .tensor import Tensor

__all__ = ["softmax_cross_entropy", "accuracy", "softmax",
           "binary_cross_entropy_with_logits", "sigmoid", "roc_auc"]


def softmax(logits):
    """Numerically stable softmax over the last axis (plain numpy)."""
    logits = np.asarray(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(logits, labels):
    """Mean softmax cross-entropy as a scalar :class:`Tensor`.

    Fused op: the backward rule is the classic ``(softmax - onehot) / n``,
    avoiding a separate log-softmax node.
    """
    if not isinstance(logits, Tensor):
        logits = Tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or len(labels) != logits.shape[0]:
        raise TrainingError(
            f"logits {logits.shape} and labels {labels.shape} mismatch")
    probs = softmax(logits.data)
    n = len(labels)
    picked = np.clip(probs[np.arange(n), labels], 1e-12, None)
    value = float(-np.log(picked).mean())

    def backward(grad):
        if logits.requires_grad:
            delta = probs.copy()
            delta[np.arange(n), labels] -= 1.0
            logits._accumulate(grad * delta / n)

    return Tensor._result(np.asarray(value, dtype=np.float32),
                          (logits,), backward)


def sigmoid(values):
    """Numerically stable logistic function (plain numpy)."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp = np.exp(values[~positive])
    out[~positive] = exp / (1.0 + exp)
    return out


def binary_cross_entropy_with_logits(logits, targets):
    """Mean binary cross-entropy over logits, as a scalar
    :class:`Tensor` (link prediction's loss).

    Fused and stable: ``loss = mean(max(z, 0) - z*y + log1p(exp(-|z|)))``
    with backward ``(sigmoid(z) - y) / n``.
    """
    if not isinstance(logits, Tensor):
        logits = Tensor(logits)
    targets = np.asarray(targets, dtype=np.float64)
    if logits.data.shape != targets.shape:
        raise TrainingError(
            f"logits {logits.data.shape} and targets {targets.shape} "
            f"mismatch")
    z = logits.data.astype(np.float64)
    value = float(np.mean(np.maximum(z, 0) - z * targets
                          + np.log1p(np.exp(-np.abs(z)))))
    n = max(targets.size, 1)

    def backward(grad):
        if logits.requires_grad:
            logits._accumulate(grad * (sigmoid(z) - targets) / n)

    return Tensor._result(np.asarray(value, dtype=np.float32),
                          (logits,), backward)


def roc_auc(scores, labels):
    """Area under the ROC curve via the rank statistic (plain numpy).

    Returns 0.5 when either class is absent.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel().astype(bool)
    num_pos = int(labels.sum())
    num_neg = len(labels) - num_pos
    if num_pos == 0 or num_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    start = 0
    for i in range(1, len(scores) + 1):
        if i == len(scores) or sorted_scores[i] != sorted_scores[start]:
            ranks[order[start:i]] = 0.5 * (start + 1 + i)
            start = i
    positive_rank_sum = ranks[labels].sum()
    u_statistic = positive_rank_sum - num_pos * (num_pos + 1) / 2.0
    return float(u_statistic / (num_pos * num_neg))


def accuracy(logits, labels):
    """Fraction of rows whose argmax matches the label."""
    logits = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels)
    if len(labels) == 0:
        return 0.0
    return float((logits.argmax(axis=-1) == labels).mean())
