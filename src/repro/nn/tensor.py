"""A minimal reverse-mode autograd engine over numpy arrays.

Only what GNN training needs: dense matmul, sparse aggregation (SpMM),
elementwise arithmetic, ReLU, dropout, row gather/concat, and a fused
softmax-cross-entropy loss.  A :class:`Tensor` wraps an ndarray plus an
optional gradient; operations record a backward closure and their parent
tensors, and :meth:`Tensor.backward` replays the tape in reverse
topological order.

The engine is deliberately small and explicit — every op's backward rule
is a few lines of numpy, which lets the test suite verify all of them
against numerical differentiation.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError

__all__ = ["Tensor"]


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape`` (reverses numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An ndarray with an autograd tape.

    Parameters
    ----------
    data:
        Array (or scalar) holding the value; stored as float32 unless
        already floating.
    requires_grad:
        Track gradients through this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad=False, _parents=(),
                 _backward=None):
        array = np.asarray(data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float32)
        self.data = array
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(_parents)
        self._backward = _backward

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def item(self):
        """The scalar value of a one-element tensor."""
        return float(self.data)

    def numpy(self):
        """The underlying ndarray (no copy)."""
        return self.data

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad):
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad=None):
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalars; non-scalar roots must pass an
        explicit output gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise TrainingError(
                    "backward() without grad only allowed on scalars")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS.
        order, visited, stack = [], set(), [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _result(data, parents, backward):
        needs = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=needs,
                      _parents=[p for p in parents if p.requires_grad],
                      _backward=backward if needs else None)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._result(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._result(-self.data, (self,), backward)

    def __sub__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __mul__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._result(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def matmul(self, other):
        """Dense matrix product ``self @ other``."""
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._result(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    def relu(self):
        """Elementwise max(x, 0)."""
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._result(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope=0.2):
        """LeakyReLU (GAT's attention nonlinearity)."""
        slope = float(negative_slope)
        mask = self.data > 0
        scale = np.where(mask, 1.0, slope).astype(self.data.dtype)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * scale)

        return self._result(self.data * scale, (self,), backward)

    def dropout(self, p, rng, training=True):
        """Inverted dropout with keep-prob scaling."""
        if not 0.0 <= p < 1.0:
            raise TrainingError(f"dropout p must be in [0, 1), got {p}")
        if not training or p == 0.0:
            return self
        keep = (rng.random(self.data.shape) >= p) / (1.0 - p)
        keep = keep.astype(self.data.dtype)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * keep)

        return self._result(self.data * keep, (self,), backward)

    def gather_rows(self, index):
        """Select rows: ``out = self[index]`` with scatter-add backward."""
        index = np.asarray(index, dtype=np.int64)

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._result(self.data[index], (self,), backward)

    def concat(self, other, axis=1):
        """Concatenate two tensors along ``axis``."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        split = self.data.shape[axis]

        def backward(grad):
            first, second = np.split(grad, [split], axis=axis)
            if self.requires_grad:
                self._accumulate(first)
            if other.requires_grad:
                other._accumulate(second)

        return self._result(np.concatenate([self.data, other.data],
                                           axis=axis),
                            (self, other), backward)

    def spmm(self, matrix):
        """Sparse aggregation ``matrix @ self`` with a fixed (non-grad)
        scipy sparse ``matrix``; backward multiplies by its transpose.

        The transpose CSR is built lazily (inference never pays for it)
        and memoized on the matrix object, so repeated backward passes
        through a reused aggregation operator — memoized block
        operators, the full-batch engine's persistent adjacency —
        transpose it once.
        """
        def backward(grad):
            if self.requires_grad:
                transpose = getattr(matrix, "_transpose_csr", None)
                if transpose is None:
                    transpose = matrix.T.tocsr()
                    try:
                        matrix._transpose_csr = transpose
                    except AttributeError:
                        pass
                self._accumulate(transpose @ grad)

        return self._result(matrix @ self.data, (self,), backward)

    def __truediv__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data
                                  / (other.data * other.data))

        return self._result(self.data / other.data, (self, other),
                            backward)

    def exp(self):
        """Elementwise exponential."""
        value = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * value)

        return self._result(value, (self,), backward)

    def log(self):
        """Elementwise natural logarithm (inputs must be positive)."""
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._result(np.log(self.data), (self,), backward)

    def tanh(self):
        """Elementwise hyperbolic tangent."""
        value = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value * value))

        return self._result(value, (self,), backward)

    def pow(self, exponent):
        """Elementwise power with a constant exponent."""
        exponent = float(exponent)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1.0))

        return self._result(self.data ** exponent, (self,), backward)

    def l2_normalize_rows(self, eps=1e-8):
        """Scale each row to unit L2 norm (GraphSAGE's embedding
        normalization)."""
        norms = np.sqrt((self.data * self.data).sum(axis=1,
                                                    keepdims=True))
        safe = np.maximum(norms, eps)
        value = self.data / safe

        def backward(grad):
            if self.requires_grad:
                # d(x / ||x||) = (g - x * <g, x> / ||x||^2) / ||x||
                inner = (grad * self.data).sum(axis=1, keepdims=True)
                self._accumulate((grad - self.data * inner
                                  / (safe * safe)) / safe)

        return self._result(value, (self,), backward)

    def reshape(self, *shape):
        """View with a new shape (same element count); gradient
        reshapes back."""
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._result(self.data.reshape(*shape), (self,), backward)

    def segment_softmax(self, segments, num_segments=None):
        """Softmax over groups of a 1-D tensor: entries sharing a
        segment id normalize together (GAT's per-destination attention
        normalization).

        ``segments`` need not be sorted; any grouping works.
        """
        if self.data.ndim != 1:
            raise TrainingError("segment_softmax expects a 1-D tensor")
        segments = np.asarray(segments, dtype=np.int64)
        if len(segments) != len(self.data):
            raise TrainingError("segments must align with the tensor")
        count = int(num_segments if num_segments is not None
                    else (segments.max() + 1 if len(segments) else 0))
        # Per-segment max for numerical stability.
        seg_max = np.full(count, -np.inf, dtype=np.float64)
        np.maximum.at(seg_max, segments, self.data)
        shifted = self.data - seg_max[segments]
        exp = np.exp(shifted)
        seg_sum = np.zeros(count, dtype=np.float64)
        np.add.at(seg_sum, segments, exp)
        seg_sum[seg_sum == 0] = 1.0
        probs = (exp / seg_sum[segments]).astype(self.data.dtype)

        def backward(grad):
            if self.requires_grad:
                # dx = p * (g - sum_segment(g * p))
                weighted = grad * probs
                seg_dot = np.zeros(count, dtype=np.float64)
                np.add.at(seg_dot, segments, weighted)
                self._accumulate(probs * (grad - seg_dot[segments]))

        return self._result(probs, (self,), backward)

    @staticmethod
    def edge_aggregate(sources, weights, edge_dst, edge_src, num_dst):
        """Weighted scatter aggregation over edges:
        ``out[d] = sum over edges e with dst d of weights[e] *
        sources[edge_src[e]]`` — GAT's attention-weighted message
        passing, differentiable in both the source features and the
        per-edge weights.
        """
        edge_dst = np.asarray(edge_dst, dtype=np.int64)
        edge_src = np.asarray(edge_src, dtype=np.int64)
        if weights.data.ndim != 1 or len(weights.data) != len(edge_dst) \
                or len(edge_dst) != len(edge_src):
            raise TrainingError("edge arrays and weights must align")
        gathered = sources.data[edge_src]
        contribution = weights.data[:, None] * gathered
        out = np.zeros((num_dst, sources.data.shape[1]),
                       dtype=sources.data.dtype)
        np.add.at(out, edge_dst, contribution)

        def backward(grad):
            per_edge_grad = grad[edge_dst]
            if sources.requires_grad:
                routed = np.zeros_like(sources.data)
                np.add.at(routed, edge_src,
                          weights.data[:, None] * per_edge_grad)
                sources._accumulate(routed)
            if weights.requires_grad:
                weights._accumulate(
                    (per_edge_grad * gathered).sum(axis=1))

        return Tensor._result(out, (sources, weights), backward)

    def mask_rows(self, keep_index, replacement):
        """Keep rows ``keep_index`` from this tensor; take every other
        row from the constant ``replacement`` array.

        Gradient flows only through the kept rows — the op that models
        bounded-staleness training (stale remote rows are constants).
        """
        keep_index = np.asarray(keep_index, dtype=np.int64)
        replacement = np.asarray(replacement, dtype=self.data.dtype)
        if replacement.shape != self.data.shape:
            raise TrainingError(
                f"replacement shape {replacement.shape} does not match "
                f"tensor shape {self.data.shape}")
        out = replacement.copy()
        out[keep_index] = self.data[keep_index]

        def backward(grad):
            if self.requires_grad:
                routed = np.zeros_like(self.data)
                routed[keep_index] = grad[keep_index]
                self._accumulate(routed)

        return self._result(out, (self,), backward)

    @staticmethod
    def assemble_rows(pieces, index_arrays, total_rows):
        """Assemble a matrix from row pieces: ``out[index_arrays[i]] =
        pieces[i]``.

        The index arrays must partition ``0..total_rows-1``; gradients
        route back to each piece's rows.
        """
        if len(pieces) != len(index_arrays) or not pieces:
            raise TrainingError("pieces and index_arrays must align")
        index_arrays = [np.asarray(ix, dtype=np.int64)
                        for ix in index_arrays]
        covered = np.concatenate(index_arrays)
        if (len(covered) != total_rows
                or not np.array_equal(np.sort(covered),
                                      np.arange(total_rows))):
            raise TrainingError(
                "index arrays must partition the output rows")
        width = pieces[0].data.shape[1]
        out = np.empty((total_rows, width), dtype=pieces[0].data.dtype)
        for piece, index in zip(pieces, index_arrays):
            if piece.data.shape != (len(index), width):
                raise TrainingError("piece shape does not match indices")
            out[index] = piece.data

        def backward(grad):
            for piece, index in zip(pieces, index_arrays):
                if piece.requires_grad:
                    piece._accumulate(grad[index])

        return Tensor._result(out, tuple(pieces), backward)

    def sum(self):
        """Sum of all elements (scalar tensor)."""
        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.full_like(self.data, grad))

        return self._result(self.data.sum(), (self,), backward)

    def mean(self):
        """Mean of all elements (scalar tensor)."""
        count = self.data.size

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.full_like(self.data, grad / count))

        return self._result(self.data.mean(), (self,), backward)
