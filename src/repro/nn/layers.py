"""Neural network modules: Linear, MLP, GCN and GraphSAGE convolutions.

Graph convolutions operate on *sampled blocks*: each layer receives the
block's normalized aggregation matrix (``num_dst x num_src``
:class:`~repro.kernels.KernelCSR`) plus the source features, and
produces destination features.  Because block sources always start
with the destinations (MFG convention), a layer can read its
destinations' own features as ``h_src[:num_dst]``.

Every aggregation dispatches through :mod:`repro.kernels` — the
mean-aggregation SpMM of GCN/SAGE, and GAT's edge-score SDDMM, edge
softmax, and attention-weighted SpMM — so the layers hold no sparse
loops of their own and ``FLAGS.kernel_backend`` selects the engine.
"""

from __future__ import annotations

import numpy as np

from ..analysis.sanitize import check_finite
from ..errors import TrainingError
from ..kernels import (KernelCOO, edge_softmax, gsddmm, gspmm,
                       normalized_block_adjacency)
from ..perf import FLAGS, PERF
from .init import xavier_uniform, zeros
from .tensor import Tensor

__all__ = ["Module", "Linear", "Dropout", "MLP", "GCNConv", "SAGEConv",
           "GATConv", "GCN", "GraphSAGE", "GAT",
           "block_aggregation_matrix", "build_model"]


class Module:
    """Base class: parameter collection and train/eval mode."""

    def __init__(self):
        self.training = True

    def parameters(self):
        """All trainable tensors of this module and its children."""
        params = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self):
        """Clear the gradients of all parameters."""
        for param in self.parameters():
            param.grad = None

    def train(self):
        """Switch this module (and children) to training mode."""
        self._set_mode(True)

    def eval(self):
        """Switch this module (and children) to inference mode."""
        self._set_mode(False)

    def _set_mode(self, training):
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def num_parameters(self):
        """Total scalar parameter count."""
        return int(sum(p.data.size for p in self.parameters()))

    def state_dict(self):
        """Flat copy of all parameter arrays (for checkpoint tests)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state):
        """Restore parameters saved by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise TrainingError("state_dict length mismatch")
        for param, saved in zip(params, state):
            if param.data.shape != saved.shape:
                raise TrainingError("state_dict shape mismatch")
            param.data = saved.copy()

    def _rngs(self):
        """Every rng generator used by this module tree (e.g. shared
        dropout rngs), deduplicated by identity, in traversal order."""
        found = []
        seen = set()

        def visit(module):
            rng = getattr(module, "rng", None)
            if isinstance(rng, np.random.Generator) \
                    and id(rng) not in seen:
                seen.add(id(rng))
                found.append(rng)
            for value in module.__dict__.values():
                if isinstance(value, Module):
                    visit(value)
                elif isinstance(value, (list, tuple)):
                    for item in value:
                        if isinstance(item, Module):
                            visit(item)

        visit(self)
        return found

    def rng_state(self):
        """Bit-generator states of the module tree's rngs (dropout
        masks advance these during training, so a bit-identical
        crash-resume must checkpoint them alongside the parameters)."""
        return [rng.bit_generator.state for rng in self._rngs()]

    def load_rng_state(self, states):
        """Restore rng states saved by :meth:`rng_state`."""
        rngs = self._rngs()
        if len(states) != len(rngs):
            raise TrainingError("rng_state length mismatch")
        for rng, state in zip(rngs, states):
            rng.bit_generator.state = state


class Linear(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(self, in_dim, out_dim, rng, bias=True):
        super().__init__()
        self.weight = xavier_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim) if bias else None

    def forward(self, x):
        """Affine transform of the input rows."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p, rng):
        super().__init__()
        self.p = float(p)
        self.rng = rng

    def forward(self, x):
        """Randomly zero entries (training mode only)."""
        return x.dropout(self.p, self.rng, training=self.training)


class MLP(Module):
    """Multi-layer perceptron with ReLU between layers."""

    def __init__(self, dims, rng, dropout=0.0):
        super().__init__()
        if len(dims) < 2:
            raise TrainingError("MLP needs at least input and output dims")
        self.layers = [Linear(dims[i], dims[i + 1], rng)
                       for i in range(len(dims) - 1)]
        self.dropout = Dropout(dropout, rng) if dropout else None

    def forward(self, x):
        """Apply the layer stack with ReLU (+dropout) in between."""
        for i, layer in enumerate(self.layers):
            x = layer.forward(x)
            if i < len(self.layers) - 1:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout.forward(x)
        return x


def block_aggregation_matrix(block, self_loops=True):
    """The block's normalized aggregation operator as a
    :class:`~repro.kernels.KernelCSR`.

    Mean aggregation over sampled in-neighbors (plus the vertex itself
    when ``self_loops``), i.e. each row sums to 1 — the standard
    normalization for GCN-style layers on sampled blocks.  The stored
    layout is bit-identical to the scipy construction this replaced
    (see :func:`~repro.kernels.normalized_block_adjacency`).

    The operator depends only on the block's structure and
    ``self_loops``, so it is memoized on the block: forward, backward
    (through the operator's memoized transpose), and repeated
    evaluations over a cached block all reuse one CSR instead of
    rebuilding it per call.  Consumers must treat the returned matrix
    as read-only.
    """
    cache = getattr(block, "_agg_cache", None) \
        if FLAGS.memoize_aggregation else None
    key = bool(self_loops)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            PERF.count("agg_matrix_hits")
            return cached
        PERF.count("agg_matrix_misses")

    with PERF.timed("spmm_build"):
        matrix = normalized_block_adjacency(block, self_loops=self_loops)

    if cache is not None:
        cache[key] = matrix
    return matrix


class GCNConv(Module):
    """GCN layer on a sampled block: ``h_dst = agg(h_src) @ W + b`` with
    mean normalization including self-loops (Kipf & Welling adapted to
    MFGs)."""

    def __init__(self, in_dim, out_dim, rng):
        super().__init__()
        self.weight = xavier_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim)

    def forward(self, adjacency, h_src):
        """Aggregate sources with ``adjacency`` then transform."""
        aggregated = gspmm(adjacency, h_src)
        return aggregated @ self.weight + self.bias

    def forward_block(self, block, h_src):
        """Run the layer on a sampled block (self-loops included)."""
        return self.forward(block_aggregation_matrix(block,
                                                     self_loops=True),
                            h_src)


class SAGEConv(Module):
    """GraphSAGE layer: ``h_dst = h_self @ W_self + mean(h_neigh) @ W_neigh
    + b`` (the "mean" aggregator of Hamilton et al.).

    ``normalize=True`` applies the original paper's per-row L2
    normalization to the output, which stabilizes training on noisy
    features.
    """

    def __init__(self, in_dim, out_dim, rng, normalize=False):
        super().__init__()
        self.weight_self = xavier_uniform(in_dim, out_dim, rng)
        self.weight_neigh = xavier_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim)
        self.normalize = bool(normalize)

    def forward(self, adjacency, h_src):
        """Combine each destination's own features with its
        mean-aggregated neighbors."""
        num_dst = adjacency.shape[0]
        h_self = h_src.gather_rows(np.arange(num_dst))
        aggregated = gspmm(adjacency, h_src)
        out = (h_self @ self.weight_self
               + aggregated @ self.weight_neigh + self.bias)
        if self.normalize:
            out = out.l2_normalize_rows()
        return out

    def forward_block(self, block, h_src):
        """Run the layer on a sampled block (no self-loops in the
        aggregation; the self path is explicit)."""
        return self.forward(block_aggregation_matrix(block,
                                                     self_loops=False),
                            h_src)


class GATConv(Module):
    """Graph attention layer (Veličković et al.) on a sampled block.

    Per edge ``u -> v``: score ``e = LeakyReLU(a_src . Wh_u +
    a_dst . Wh_v)``; attention coefficients are the per-destination
    softmax over scores (self-loop included); the output is the
    attention-weighted sum of transformed sources.  ``heads`` attention
    heads run independently and concatenate.
    """

    def __init__(self, in_dim, out_dim, rng, heads=1,
                 negative_slope=0.2):
        super().__init__()
        if heads < 1 or out_dim % heads:
            raise TrainingError(
                f"out_dim {out_dim} must split evenly over {heads} heads")
        self.heads = int(heads)
        self.head_dim = out_dim // self.heads
        self.negative_slope = float(negative_slope)
        self.weights = [xavier_uniform(in_dim, self.head_dim, rng)
                        for _head in range(self.heads)]
        self.attn_src = [xavier_uniform(self.head_dim, 1, rng)
                         for _head in range(self.heads)]
        self.attn_dst = [xavier_uniform(self.head_dim, 1, rng)
                         for _head in range(self.heads)]
        self.bias = zeros(out_dim)

    @staticmethod
    def _block_edges_with_self_loops(block):
        """Edge lists in local ids, dst-side self-loops appended.

        Memoized on the block (same lifetime argument as
        :func:`block_aggregation_matrix`); callers must not mutate the
        returned arrays.
        """
        if FLAGS.memoize_aggregation:
            cached = getattr(block, "_edge_list_cache", None)
            if cached is not None:
                PERF.count("gat_edges_hits")
                return cached
            PERF.count("gat_edges_misses")
        edge_dst = np.repeat(np.arange(block.num_dst), block.degrees())
        edge_src = block.indices
        loops = np.arange(block.num_dst)
        edges = (np.concatenate([edge_dst, loops]),
                 np.concatenate([edge_src, loops]))
        if FLAGS.memoize_aggregation and hasattr(block,
                                                 "_edge_list_cache"):
            block._edge_list_cache = edges
        return edges

    def forward_block(self, block, h_src):
        """Attention-weighted aggregation over the block's edges.

        The whole sparse path runs through :mod:`repro.kernels`: the
        per-edge score is a ``gsddmm`` add over the block's edge list
        (a :class:`~repro.kernels.KernelCOO`, whose edge *order* —
        block CSR edges then appended self-loops — is part of the
        numerical contract), the attention coefficients come from
        ``edge_softmax``, and the output is an attention-weighted
        ``gspmm`` over the same edges.
        """
        edge_dst, edge_src = self._block_edges_with_self_loops(block)
        edges = KernelCOO(edge_dst, edge_src,
                          (block.num_dst, block.num_src))
        outputs = []
        for weight, a_src, a_dst in zip(self.weights, self.attn_src,
                                        self.attn_dst):
            transformed = h_src @ weight              # (S, d_head)
            score_src = (transformed @ a_src)         # (S, 1)
            # Destinations are the leading block sources (MFG
            # convention), so the dst-side operand is the leading rows.
            score_dst = (transformed @ a_dst).gather_rows(
                np.arange(block.num_dst))             # (D, 1)
            scores = gsddmm(edges, score_dst, score_src, op="add")
            alpha = edge_softmax(edges, scores.reshape(-1).leaky_relu(
                self.negative_slope))
            outputs.append(gspmm(edges, transformed, values=alpha))
        out = outputs[0]
        for extra in outputs[1:]:
            out = out.concat(extra, axis=1)
        return out + self.bias


class _GNNBase(Module):
    """Shared stacking logic for block-based GNN models.

    Architecture (mirrors the paper's setup): L graph convolutions with
    hidden width 128, ReLU + dropout between them, followed by an MLP
    classifier head.
    """

    conv_cls = None
    self_loops = True

    def __init__(self, in_dim, hidden_dim, num_classes, num_layers, rng,
                 dropout=0.1, mlp_hidden=None):
        super().__init__()
        if num_layers < 1:
            raise TrainingError("need at least one GNN layer")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.convs = [self.conv_cls(dims[i], dims[i + 1], rng)
                      for i in range(num_layers)]
        head_dims = ([hidden_dim, mlp_hidden, num_classes]
                     if mlp_hidden else [hidden_dim, num_classes])
        self.head = MLP(head_dims, rng, dropout=0.0)
        self.dropout = Dropout(dropout, rng)
        self.num_layers = num_layers

    def embed(self, subgraph, features):
        """Seed-vertex embeddings (the conv stack without the
        classification head) — used directly by link prediction and
        other embedding-consuming tasks."""
        if len(subgraph.blocks) != self.num_layers:
            raise TrainingError(
                f"model has {self.num_layers} layers but subgraph has "
                f"{len(subgraph.blocks)} blocks")
        h = features if isinstance(features, Tensor) else Tensor(features)
        if FLAGS.sanitize:
            check_finite(h.data, name="input features")
        for i, (conv, block) in enumerate(zip(self.convs, subgraph.blocks)):
            h = conv.forward_block(block, h)
            if FLAGS.sanitize:
                check_finite(h.data, name=f"layer {i} activations")
            h = h.relu()
            if i < len(self.convs) - 1:
                h = self.dropout.forward(h)
        return h

    def forward(self, subgraph, features):
        """Run the model over a :class:`SampledSubgraph`.

        ``features`` must be the raw feature rows of
        ``subgraph.input_nodes`` (a numpy array or Tensor).
        """
        return self.head.forward(self.embed(subgraph, features))


class GCN(_GNNBase):
    """The paper's GCN: L GCNConv layers + MLP head (hidden dim 128)."""

    conv_cls = GCNConv
    self_loops = True


class GraphSAGE(_GNNBase):
    """The paper's GraphSAGE: L SAGEConv layers + MLP head."""

    conv_cls = SAGEConv
    self_loops = False


class GAT(_GNNBase):
    """Graph attention network: L GATConv layers + MLP head (the model
    the paper cites for vertex classification alongside GCN)."""

    conv_cls = GATConv
    self_loops = True


def build_model(name, in_dim, num_classes, num_layers=2, hidden_dim=128,
                rng=None, dropout=0.1):
    """Factory for the supported models ("gcn", "graphsage", "gat")."""
    rng = rng if rng is not None else np.random.default_rng(0)
    models = {"gcn": GCN, "graphsage": GraphSAGE, "sage": GraphSAGE,
              "gat": GAT}
    key = name.lower()
    if key not in models:
        raise TrainingError(
            f"unknown model {name!r}; known: gcn, graphsage, gat")
    return models[key](in_dim, hidden_dim, num_classes, num_layers, rng,
                       dropout=dropout)
