"""Numpy NN engine: autograd tensor, layers, losses, optimizers."""

from .init import xavier_uniform, zeros
from .layers import (GAT, GCN, MLP, Dropout, GATConv, GCNConv, GraphSAGE,
                     Linear, Module, SAGEConv, block_aggregation_matrix,
                     build_model)
from .loss import (accuracy, binary_cross_entropy_with_logits, roc_auc,
                   sigmoid, softmax, softmax_cross_entropy)
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor

__all__ = [
    "Tensor", "xavier_uniform", "zeros",
    "Module", "Linear", "Dropout", "MLP", "GCNConv", "SAGEConv",
    "GATConv", "GCN", "GraphSAGE", "GAT", "build_model",
    "block_aggregation_matrix",
    "softmax", "softmax_cross_entropy", "accuracy",
    "binary_cross_entropy_with_logits", "sigmoid", "roc_auc",
    "Optimizer", "SGD", "Adam",
]
