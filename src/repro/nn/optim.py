"""Optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from ..analysis.sanitize import check_finite
from ..errors import TrainingError
from ..perf.flags import FLAGS

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters, lr):
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer received no parameters")
        self.lr = float(lr)

    def _sanitize_grads(self):
        """NaN/Inf scan over accumulated gradients (FLAGS.sanitize
        only); called by subclasses at the top of :meth:`step` so a
        diverging loss fails at the update that received it."""
        if not FLAGS.sanitize:
            return
        for index, param in enumerate(self.parameters):
            if param.grad is not None:
                check_finite(param.grad, name=f"gradient[{index}]")

    def zero_grad(self):
        """Clear every tracked parameter's gradient."""
        for param in self.parameters:
            param.grad = None

    def step(self):
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def state_dict(self):
        """Copy of the optimizer's mutable state (for checkpoints)."""
        return {"lr": self.lr}

    def load_state_dict(self, state):
        """Restore state saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    @staticmethod
    def _check_arrays(saved, current, what):
        if len(saved) != len(current):
            raise TrainingError(f"optimizer {what} length mismatch")
        for kept, fresh in zip(saved, current):
            if kept.shape != fresh.shape:
                raise TrainingError(f"optimizer {what} shape mismatch")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight
    decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._sanitize_grads()
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def state_dict(self):
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._check_arrays(state["velocity"], self._velocity, "velocity")
        self._velocity = [v.copy() for v in state["velocity"]]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters, lr=0.01, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._sanitize_grads()
        self._step += 1
        correction1 = 1.0 - self.beta1 ** self._step
        correction2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data = param.data - self.lr * m_hat / (
                np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        state = super().state_dict()
        state["step"] = self._step
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._check_arrays(state["m"], self._m, "moment")
        self._check_arrays(state["v"], self._v, "moment")
        self._step = int(state["step"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]
