"""Exception hierarchy for the repro library.

All errors raised on purpose by the library derive from :class:`ReproError`
so callers can catch library failures with a single except clause.

The robustness layer adds two members: :class:`FaultError` for failures
*injected* by the fault-simulation subsystem (``repro.faults``) — a
scheduled process halt, a crashed worker that cannot be worked around,
an exhausted retry budget configured to be fatal — and
:class:`CheckpointError` for checkpoint files that are missing when
required, corrupt (checksum mismatch), or were written by an
incompatible configuration.
"""

__all__ = ["ReproError", "GraphError", "PartitionError",
           "SamplingError", "TrainingError", "KernelError",
           "TransferError", "DatasetError", "ServingError",
           "AdmissionError", "FleetError", "FaultError",
           "CheckpointError", "CheckpointIntegrityError",
           "SanitizerError"]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph is structurally invalid or an operation on a
    graph receives inconsistent inputs (bad CSR arrays, out-of-range
    vertex ids, mismatched array lengths)."""


class PartitionError(ReproError):
    """Raised when a partitioning request cannot be satisfied (e.g. more
    partitions than vertices, or a constraint matrix with the wrong
    shape)."""


class SamplingError(ReproError):
    """Raised for invalid sampling configurations (negative fanout,
    sampling rate outside (0, 1], empty seed sets where forbidden)."""


class TrainingError(ReproError):
    """Raised when a training configuration is inconsistent (e.g. model
    dimensions not matching the dataset, zero batches)."""


class KernelError(ReproError):
    """Raised for invalid sparse-kernel dispatch: unknown backend or
    op/reduce names, an explicitly requested backend that is not
    importable, or adjacency/operand shape mismatches."""


class TransferError(ReproError):
    """Raised for invalid transfer/cache configurations (negative
    bandwidth, cache larger than feature store, unknown method name)."""


class DatasetError(ReproError):
    """Raised when a dataset name is unknown or its construction
    parameters are inconsistent."""


class ServingError(ReproError):
    """Raised for invalid online-serving configurations (unknown
    execution mode, a model the layer-wise precompute path cannot
    handle, malformed batching policies)."""


class AdmissionError(ServingError):
    """Raised when the serving admission queue is full and a new request
    must be rejected (backpressure, §repro.serve.batcher)."""


class FleetError(ServingError):
    """Raised for invalid fleet configurations (``repro.fleet``): a
    replica count that does not match the partition, an unroutable
    request because every replica is down, or malformed routing/
    autoscaling parameters."""


class FaultError(ReproError):
    """Raised by the fault-injection subsystem (``repro.faults``) when a
    scheduled fault takes effect and cannot be absorbed: an injected
    process halt, every worker crashed, or an invalid fault plan."""


class CheckpointError(ReproError):
    """Raised when a training checkpoint is missing where one is
    required, fails its integrity check (truncated file, checksum
    mismatch), or belongs to a different training configuration."""


class CheckpointIntegrityError(CheckpointError):
    """Raised when a checkpoint file exists but cannot be trusted: its
    checksum sidecar is missing or disagrees with the payload, the
    payload is truncated, or the header is corrupt.  Distinct from a
    merely *missing* checkpoint so recovery code can decide to fall
    back to the previous valid checkpoint
    (:meth:`repro.faults.Checkpointer.load_latest`)."""


class SanitizerError(ReproError):
    """Raised by the runtime sanitizers (``repro.analysis.sanitize``)
    when a numeric invariant is violated with ``FLAGS.sanitize`` on:
    NaN/Inf in activations or gradients, a structurally malformed CSR
    array, or a broken shape/dtype contract."""
