"""Synchronous data-parallel training engine over the simulated cluster.

One *step* of synchronous distributed mini-batch training: every worker
samples a batch from its own training vertices, computes gradients on the
shared model (data-parallel replicas are mathematically one model), the
gradients are averaged (all-reduce), and the optimizer steps.  The engine
performs that math for real (numpy autograd) while metering every byte
that would have crossed the network or PCIe, then converts counts to a
simulated epoch time:

    epoch = max over workers of pipeline(BP, DT, NN batches)
            + all-reduce time per step

Remote work accounting per batch:

* sampled vertices whose owner is another machine -> a remote sampling
  request; the returned sub-adjacency counts as network bytes,
* input features not owned/replicated locally -> network bytes,
* features not in the worker's GPU cache -> PCIe bytes (via the
  configured transfer method).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TrainingError
from ..nn import softmax_cross_entropy
from ..perf import PERF
from ..partition.workload import BYTES_PER_EDGE
from ..transfer.hardware import estimate_flops
from ..transfer.methods import BatchStats
from ..transfer.pipeline import simulate_pipeline
from .comm import CommMeter
from .worker import BatchWork, Worker

__all__ = ["SyncEngine", "EpochStats"]


@dataclass
class EpochStats:
    """Everything measured during one training epoch."""

    loss: float
    epoch_seconds: float           # simulated wall time of the epoch
    bp_seconds: float              # summed batch-preparation time
    dt_seconds: float              # summed CPU->GPU transfer time
    nn_seconds: float              # summed NN computation time
    allreduce_seconds: float
    num_steps: int
    involved_vertices: int         # total vertex slots in sampled blocks
    involved_edges: int            # total aggregation edges
    remote_feature_bytes: int
    batch_size: int
    # Measured (not simulated) hot-path wall seconds and counters
    # accumulated during this epoch (``repro.perf.PERF`` delta).
    perf: dict = field(repr=False, default=None)

    def breakdown(self):
        """Step shares of the (sequential) work — Figure 2's quantities."""
        total = (self.bp_seconds + self.dt_seconds + self.nn_seconds
                 + self.allreduce_seconds)
        if total == 0:
            return {"batch_preparation": 0.0, "data_transferring": 0.0,
                    "nn_computation": 0.0}
        return {
            "batch_preparation": self.bp_seconds / total,
            "data_transferring": self.dt_seconds / total,
            "nn_computation": (self.nn_seconds
                               + self.allreduce_seconds) / total,
        }


class SyncEngine:
    """Drives synchronous distributed mini-batch training.

    Parameters
    ----------
    dataset:
        :class:`~repro.graph.datasets.Dataset`.
    partition:
        :class:`~repro.partition.base.PartitionResult` defining worker
        ownership (and replication).
    sampler:
        Batch-preparation sampler.
    model, optimizer:
        The shared model and its optimizer.
    spec:
        :class:`~repro.transfer.hardware.HardwareSpec` cost model.
    transfer:
        :class:`~repro.transfer.methods.TransferMethod` for CPU->GPU.
    caches:
        Optional list of per-worker GPU caches (parallel to workers).
    pipeline_mode:
        "none", "bp", or "bp+dt" (§7.3.2).
    hidden_dim, num_classes:
        Model dimensions for the FLOPs estimate.
    """

    def __init__(self, dataset, partition, sampler, model, optimizer,
                 spec, transfer, caches=None, pipeline_mode="bp+dt",
                 hidden_dim=128, num_classes=None):
        self.dataset = dataset
        self.partition = partition
        self.sampler = sampler
        self.model = model
        self.optimizer = optimizer
        self.spec = spec
        self.transfer = transfer
        self.pipeline_mode = pipeline_mode
        self.hidden_dim = hidden_dim
        self.num_classes = (num_classes if num_classes is not None
                            else dataset.num_classes)
        self.comm = CommMeter(partition.num_parts)

        train_ids = dataset.train_ids
        owners = partition.assignment[train_ids]
        caches = caches or [None] * partition.num_parts
        if len(caches) != partition.num_parts:
            raise TrainingError("need one cache slot per worker")
        self.workers = [
            Worker(worker_id=p, train_ids=train_ids[owners == p],
                   cache=caches[p])
            for p in range(partition.num_parts)
        ]
        self._grad_bytes = sum(p.data.size for p in model.parameters()) * 4

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _batch_work(self, worker, subgraph):
        """Meter one sampled batch on ``worker`` and return its
        :class:`BatchWork`."""
        part = worker.worker_id
        assignment = self.partition.assignment
        feat_bytes = (self.dataset.feature_dim
                      * self.dataset.features.itemsize)

        # Remote sampling requests: expansions of vertices stored
        # elsewhere; the sampled sub-adjacency comes back over the wire.
        remote_edges = 0
        remote_requests = 0
        for block in subgraph.blocks:
            local = self.partition.is_local(part, block.dst_nodes)
            remote_dst = block.dst_nodes[~local]
            if len(remote_dst):
                remote_requests += len(remote_dst)
                returned = int(block.degrees()[~local].sum())
                remote_edges += returned
                for owner in np.unique(assignment[remote_dst]):
                    self.comm.record(owner, part,
                                     returned * BYTES_PER_EDGE, messages=1)

        # Remote feature fetches (network), deduplicated per batch.
        inputs = subgraph.input_nodes
        remote_inputs = inputs[~self.partition.is_local(part, inputs)]
        remote_feat_bytes = len(remote_inputs) * feat_bytes
        if len(remote_inputs):
            for owner in np.unique(assignment[remote_inputs]):
                count = int((assignment[remote_inputs] == owner).sum())
                self.comm.record(owner, part, count * feat_bytes,
                                 messages=1)

        network_bytes = remote_feat_bytes + remote_edges * BYTES_PER_EDGE
        network_msgs = remote_requests // 64 + (2 if remote_feat_bytes else 0)
        bp = (self.spec.sample_time(subgraph.total_edges)
              + self.spec.network_time(network_bytes,
                                       messages=network_msgs))

        stats = BatchStats.from_subgraph(subgraph, self.dataset)
        dt = self.transfer.transfer(stats, self.spec,
                                    cache=worker.cache).total_seconds

        flops = estimate_flops(subgraph, self.dataset.feature_dim,
                               self.hidden_dim, self.num_classes)
        nn = self.spec.compute_time(flops)

        return BatchWork(
            seeds=len(subgraph.seeds),
            sampled_edges=subgraph.total_edges,
            input_vertices=len(inputs),
            remote_feature_bytes=remote_feat_bytes,
            remote_sample_requests=remote_requests,
            bp_seconds=bp, dt_seconds=dt, nn_seconds=nn)

    def _allreduce_seconds(self):
        """Ring all-reduce of the gradient vector across workers."""
        k = self.partition.num_parts
        if k == 1:
            return 0.0
        volume = 2.0 * (k - 1) / k * self._grad_bytes
        return self.spec.network_time(volume, messages=2 * (k - 1))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def run_epoch(self, batch_size, rng, selector=None):
        """One synchronous epoch; returns :class:`EpochStats`.

        ``selector`` optionally overrides each worker's batch formation
        (e.g. cluster-based selection); it is applied per worker to the
        worker's own training vertices.
        """
        graph = self.dataset.graph
        labels = self.dataset.labels
        features = self.dataset.features
        perf_before = PERF.snapshot()

        per_worker_batches = []
        for worker in self.workers:
            if worker.num_train == 0:
                per_worker_batches.append([])
                continue
            if selector is None:
                batches = worker.epoch_batches(batch_size, rng)
            else:
                batches = list(selector.batches(worker.train_ids,
                                                batch_size, rng))
            per_worker_batches.append(batches)

        num_steps = max((len(b) for b in per_worker_batches), default=0)
        if num_steps == 0:
            raise TrainingError("epoch with zero batches")

        self.model.train()
        losses = []
        batches_this_epoch = [0] * len(self.workers)
        for step in range(num_steps):
            active = [(w, per_worker_batches[w.worker_id][step])
                      for w in self.workers
                      if step < len(per_worker_batches[w.worker_id])]
            self.optimizer.zero_grad()
            step_loss = 0.0
            for worker, seeds in active:
                subgraph = self.sampler.sample(graph, seeds, rng)
                worker.log(self._batch_work(worker, subgraph))
                batches_this_epoch[worker.worker_id] += 1
                logits = self.model.forward(
                    subgraph, features[subgraph.input_nodes])
                loss = softmax_cross_entropy(logits,
                                             labels[subgraph.seeds])
                # Average gradients across the step's active workers.
                (loss * (1.0 / len(active))).backward()
                step_loss += loss.item() / len(active)
            self.optimizer.step()
            losses.append(step_loss)

        # Simulated epoch time: slowest worker's pipelined makespan plus
        # the synchronous all-reduce per step.
        makespans = []
        bp = dt = nn = 0.0
        vertices = edges = remote_bytes = 0
        for worker, count in zip(self.workers, batches_this_epoch):
            if count == 0:
                continue
            stage_times = worker.epoch_stage_times(count)
            makespans.append(simulate_pipeline(
                stage_times, self.pipeline_mode).makespan)
            recent = worker.work_log[-count:]
            bp += sum(w.bp_seconds for w in recent)
            dt += sum(w.dt_seconds for w in recent)
            nn += sum(w.nn_seconds for w in recent)
            vertices += sum(w.input_vertices for w in recent)
            edges += sum(w.sampled_edges for w in recent)
            remote_bytes += sum(w.remote_feature_bytes for w in recent)
        allreduce = self._allreduce_seconds() * num_steps
        epoch_seconds = max(makespans) + allreduce

        return EpochStats(
            loss=float(np.mean(losses)),
            epoch_seconds=epoch_seconds,
            bp_seconds=bp, dt_seconds=dt, nn_seconds=nn,
            allreduce_seconds=allreduce,
            num_steps=num_steps,
            involved_vertices=vertices,
            involved_edges=edges,
            remote_feature_bytes=remote_bytes,
            batch_size=batch_size,
            perf=PERF.delta(perf_before))
