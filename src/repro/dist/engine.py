"""Synchronous data-parallel training engine over the simulated cluster.

One *step* of synchronous distributed mini-batch training: every worker
samples a batch from its own training vertices, computes gradients on the
shared model (data-parallel replicas are mathematically one model), the
gradients are averaged (all-reduce), and the optimizer steps.  The engine
performs that math for real (numpy autograd) while metering every byte
that would have crossed the network or PCIe, then converts counts to a
simulated epoch time:

    epoch = max over workers of pipeline(BP, DT, NN batches)
            + all-reduce time per step

Remote work accounting per batch:

* sampled vertices whose owner is another machine -> a remote sampling
  request; the returned sub-adjacency counts as network bytes,
* input features not owned/replicated locally -> network bytes,
* features not in the worker's GPU cache -> PCIe bytes (via the
  configured transfer method).

Fault tolerance (``repro.faults``): the engine optionally takes a
:class:`~repro.faults.plan.FaultInjector` and a
:class:`~repro.faults.retry.RetryPolicy`.  Stragglers multiply a
worker's stage times, degraded links scale the network bandwidth for the
epoch, and flaky remote fetches pay retry timeouts/backoff in simulated
time (counted on :class:`EpochStats`; the training math is unaffected —
a fetch that exhausts its budget is served by a fail-slow fallback, so
faulty and healthy runs share one loss curve).  A permanent worker crash
removes the machine: its training vertices are either redistributed to
survivors (``crash_policy="redistribute"``) or dropped
(``crash_policy="drop"``), and the all-reduce ring shrinks to the
survivors.  The crashed machine's graph/feature shard stays reachable —
storage outlives the compute — so survivors fetch adopted vertices'
data remotely, which is exactly the extra cost the fault benchmark
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FaultError, TrainingError
from ..nn import softmax_cross_entropy
from ..perf import PERF
from ..partition.workload import BYTES_PER_EDGE
from ..transfer.hardware import estimate_flops
from ..transfer.methods import BatchStats
from ..transfer.pipeline import simulate_pipeline
from .comm import CommMeter
from .worker import BatchWork, Worker

__all__ = ["SyncEngine", "EpochStats"]


@dataclass
class EpochStats:
    """Everything measured during one training epoch."""

    loss: float
    epoch_seconds: float           # simulated wall time of the epoch
    bp_seconds: float              # summed batch-preparation time
    dt_seconds: float              # summed CPU->GPU transfer time
    nn_seconds: float              # summed NN computation time
    allreduce_seconds: float
    num_steps: int
    involved_vertices: int         # total vertex slots in sampled blocks
    involved_edges: int            # total aggregation edges
    remote_feature_bytes: int
    batch_size: int
    # Fault/recovery accounting (zero on healthy runs): remote-fetch
    # re-requests issued, fetches whose retry budget was exhausted
    # (served by the fail-slow fallback), simulated seconds added by
    # retries/timeouts, surviving worker count, and training vertices
    # currently dropped because of crashes under crash_policy="drop".
    retries: int = 0
    giveups: int = 0
    fault_seconds: float = 0.0
    alive_workers: int = 0
    dropped_vertices: int = 0
    # Measured (not simulated) hot-path wall seconds and counters
    # accumulated during this epoch (``repro.perf.PERF`` delta).
    perf: dict = field(repr=False, default=None)

    def __post_init__(self):
        # Normalize so downstream ``stats.perf.get(...)`` never sees
        # None (callers may construct EpochStats without a perf delta).
        if self.perf is None:
            self.perf = {}

    def breakdown(self):
        """Step shares of the (sequential) work — Figure 2's quantities."""
        total = (self.bp_seconds + self.dt_seconds + self.nn_seconds
                 + self.allreduce_seconds)
        if total == 0:
            return {"batch_preparation": 0.0, "data_transferring": 0.0,
                    "nn_computation": 0.0}
        return {
            "batch_preparation": self.bp_seconds / total,
            "data_transferring": self.dt_seconds / total,
            "nn_computation": (self.nn_seconds
                               + self.allreduce_seconds) / total,
        }


class SyncEngine:
    """Drives synchronous distributed mini-batch training.

    Parameters
    ----------
    dataset:
        :class:`~repro.graph.datasets.Dataset`.
    partition:
        :class:`~repro.partition.base.PartitionResult` defining worker
        ownership (and replication).
    sampler:
        Batch-preparation sampler.
    model, optimizer:
        The shared model and its optimizer.
    spec:
        :class:`~repro.transfer.hardware.HardwareSpec` cost model.
    transfer:
        :class:`~repro.transfer.methods.TransferMethod` for CPU->GPU.
    caches:
        Optional list of per-worker GPU caches (parallel to workers).
    pipeline_mode:
        "none", "bp", or "bp+dt" (§7.3.2).
    hidden_dim, num_classes:
        Model dimensions for the FLOPs estimate.
    injector:
        Optional :class:`~repro.faults.plan.FaultInjector` replaying a
        seeded fault schedule against the epoch clock.
    retry:
        :class:`~repro.faults.retry.RetryPolicy` for flaky remote
        fetches (defaults to ``RetryPolicy()`` when an injector is
        given).
    crash_policy:
        What to do with a crashed worker's training vertices:
        ``"redistribute"`` (split among survivors, deterministic
        worker-id order) or ``"drop"`` (excluded from every later
        epoch).
    """

    CRASH_POLICIES = ("redistribute", "drop")

    def __init__(self, dataset, partition, sampler, model, optimizer,
                 spec, transfer, caches=None, pipeline_mode="bp+dt",
                 hidden_dim=128, num_classes=None, injector=None,
                 retry=None, crash_policy="redistribute"):
        if crash_policy not in self.CRASH_POLICIES:
            raise TrainingError(
                f"unknown crash_policy {crash_policy!r}; "
                f"known: {self.CRASH_POLICIES}")
        self.dataset = dataset
        self.partition = partition
        self.sampler = sampler
        self.model = model
        self.optimizer = optimizer
        self.spec = spec
        self.transfer = transfer
        self.pipeline_mode = pipeline_mode
        self.hidden_dim = hidden_dim
        self.num_classes = (num_classes if num_classes is not None
                            else dataset.num_classes)
        self.comm = CommMeter(partition.num_parts)

        train_ids = dataset.train_ids
        owners = partition.assignment[train_ids]
        caches = caches or [None] * partition.num_parts
        if len(caches) != partition.num_parts:
            raise TrainingError("need one cache slot per worker")
        self.workers = [
            Worker(worker_id=p, train_ids=train_ids[owners == p],
                   cache=caches[p])
            for p in range(partition.num_parts)
        ]
        self._grad_bytes = sum(p.data.size for p in model.parameters()) * 4

        self.injector = injector
        self.crash_policy = crash_policy
        if retry is None and injector is not None:
            from ..faults.retry import RetryPolicy
            retry = RetryPolicy()
        self.retry = retry
        self._epoch_counter = 0
        self._dropped = 0
        # Per-epoch fault state, refreshed by run_epoch().
        self._epoch_spec = spec
        self._stage_multipliers = {}
        self._fetch_keys = {}

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    @property
    def alive_workers(self):
        """The workers that have not crashed."""
        return [w for w in self.workers if w.alive]

    def _apply_crashes(self, epoch):
        """Kill workers whose scheduled crash epoch has arrived and
        redistribute or drop their training vertices.

        Crashes are processed in ``(epoch, worker)`` order so that a
        resumed run — which applies several past crashes in one call —
        reproduces the exact redistribution sequence of the original.
        """
        events = sorted((e for e in self.injector.plan
                         if e.kind == "crash" and e.epoch <= epoch),
                        key=lambda e: (e.epoch, e.worker))
        for event in events:
            if event.worker >= len(self.workers):
                raise FaultError(
                    f"crash fault targets worker {event.worker} but the "
                    f"cluster has {len(self.workers)} workers")
            worker = self.workers[event.worker]
            if not worker.alive:
                continue
            surrendered = worker.crash()
            survivors = self.alive_workers
            if not survivors:
                raise FaultError(
                    f"every worker has crashed by epoch {epoch}; "
                    f"nothing left to train on")
            if self.crash_policy == "redistribute":
                for survivor, share in zip(
                        survivors,
                        np.array_split(surrendered, len(survivors))):
                    if len(share):
                        survivor.adopt(share)
            else:
                self._dropped += len(surrendered)

    def _begin_epoch_faults(self, epoch):
        """Refresh the epoch's fault state (spec, multipliers, rng
        streams); raises :class:`FaultError` on a scheduled halt."""
        self._stage_multipliers = {}
        self._fetch_keys = {}
        self._epoch_spec = self.spec
        if self.injector is None:
            return
        self.injector.begin_epoch(epoch)
        self._apply_crashes(epoch)
        bandwidth = self.injector.bandwidth_multiplier()
        if bandwidth != 1.0:
            self._epoch_spec = self.spec.with_overrides(
                network_bandwidth=self.spec.network_bandwidth * bandwidth)
        for worker in self.alive_workers:
            multiplier = self.injector.stage_multiplier(worker.worker_id)
            if multiplier != 1.0:
                self._stage_multipliers[worker.worker_id] = multiplier

    def _retry_overhead(self, part, rpc_messages):
        """Simulated seconds added by flaky-fetch retries for
        ``rpc_messages`` remote requests of worker ``part`` this epoch;
        returns ``(extra_seconds, retries, giveups)``."""
        if (self.injector is None or self.retry is None
                or rpc_messages == 0):
            return 0.0, 0, 0
        if self.injector.fetch_failure_prob(part) <= 0.0:
            return 0.0, 0, 0
        extra = 0.0
        retries = giveups = 0
        outcomes = iter(
            lambda: self.injector.fetch_attempt_fails(part), object())
        for _message in range(rpc_messages):
            key = self._fetch_keys.get(part, 0)
            self._fetch_keys[part] = key + 1
            seconds, attempts, gave_up = self.retry.simulate(
                outcomes, key=part * 1_000_003 + key)
            extra += seconds
            retries += attempts
            giveups += int(gave_up)
        return extra, retries, giveups

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _batch_work(self, worker, subgraph):
        """Meter one sampled batch on ``worker`` and return its
        :class:`BatchWork`."""
        part = worker.worker_id
        assignment = self.partition.assignment
        feat_bytes = (self.dataset.feature_dim
                      * self.dataset.features.itemsize)

        # Remote sampling requests: expansions of vertices stored
        # elsewhere; the sampled sub-adjacency comes back over the wire.
        remote_edges = 0
        remote_requests = 0
        rpc_messages = 0
        for block in subgraph.blocks:
            local = self.partition.is_local(part, block.dst_nodes)
            remote_dst = block.dst_nodes[~local]
            if len(remote_dst):
                remote_requests += len(remote_dst)
                returned = int(block.degrees()[~local].sum())
                remote_edges += returned
                for owner in np.unique(assignment[remote_dst]):
                    self.comm.record(owner, part,
                                     returned * BYTES_PER_EDGE, messages=1)
                    rpc_messages += 1

        # Remote feature fetches (network), deduplicated per batch.
        inputs = subgraph.input_nodes
        remote_inputs = inputs[~self.partition.is_local(part, inputs)]
        remote_feat_bytes = len(remote_inputs) * feat_bytes
        if len(remote_inputs):
            for owner in np.unique(assignment[remote_inputs]):
                count = int((assignment[remote_inputs] == owner).sum())
                self.comm.record(owner, part, count * feat_bytes,
                                 messages=1)
                rpc_messages += 1

        spec = self._epoch_spec
        network_bytes = remote_feat_bytes + remote_edges * BYTES_PER_EDGE
        network_msgs = remote_requests // 64 + (2 if remote_feat_bytes else 0)
        bp = (spec.sample_time(subgraph.total_edges)
              + spec.network_time(network_bytes,
                                  messages=network_msgs))

        stats = BatchStats.from_subgraph(subgraph, self.dataset)
        breakdown = self.transfer.transfer(stats, spec,
                                           cache=worker.cache)
        dt = breakdown.total_seconds
        tier_seconds = breakdown.tier_seconds

        flops = estimate_flops(subgraph, self.dataset.feature_dim,
                               self.hidden_dim, self.num_classes)
        nn = spec.compute_time(flops)

        # Injected faults: flaky remote fetches pay retry timeouts and
        # backoff (batch-preparation time), stragglers stretch every
        # stage of this worker's batch.
        fault_seconds, retries, giveups = self._retry_overhead(
            part, rpc_messages)
        bp += fault_seconds
        multiplier = self._stage_multipliers.get(part, 1.0)
        if multiplier != 1.0:
            bp *= multiplier
            dt *= multiplier
            nn *= multiplier
            if tier_seconds is not None:
                tier_seconds = {tier: seconds * multiplier
                                for tier, seconds in tier_seconds.items()}

        return BatchWork(
            seeds=len(subgraph.seeds),
            sampled_edges=subgraph.total_edges,
            input_vertices=len(inputs),
            remote_feature_bytes=remote_feat_bytes,
            remote_sample_requests=remote_requests,
            bp_seconds=bp, dt_seconds=dt, nn_seconds=nn,
            retries=retries, giveups=giveups,
            fault_seconds=fault_seconds,
            dt_tier_seconds=tier_seconds)

    def _allreduce_seconds(self):
        """Ring all-reduce of the gradient vector across the *surviving*
        workers (the ring shrinks when a worker crashes)."""
        k = len(self.alive_workers)
        if k <= 1:
            return 0.0
        volume = 2.0 * (k - 1) / k * self._grad_bytes
        return self._epoch_spec.network_time(volume,
                                             messages=2 * (k - 1))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def run_epoch(self, batch_size, rng, selector=None, epoch=None):
        """One synchronous epoch; returns :class:`EpochStats`.

        ``selector`` optionally overrides each worker's batch formation
        (e.g. cluster-based selection); it is applied per worker to the
        worker's own training vertices.

        ``epoch`` is the global epoch index on the fault clock; when
        omitted, an internal counter is used.  A resumed trainer passes
        the absolute epoch so the fault schedule replays at the right
        positions.
        """
        if epoch is None:
            epoch = self._epoch_counter
        self._epoch_counter = epoch + 1
        self._begin_epoch_faults(epoch)

        graph = self.dataset.graph
        labels = self.dataset.labels
        features = self.dataset.features
        perf_before = PERF.snapshot()

        per_worker_batches = []
        for worker in self.workers:
            if worker.num_train == 0:
                per_worker_batches.append([])
                continue
            if selector is None:
                batches = worker.epoch_batches(batch_size, rng)
            else:
                batches = list(selector.batches(worker.train_ids,
                                                batch_size, rng))
            per_worker_batches.append(batches)

        num_steps = max((len(b) for b in per_worker_batches), default=0)
        if num_steps == 0:
            raise TrainingError("epoch with zero batches")

        self.model.train()
        losses = []
        batches_this_epoch = [0] * len(self.workers)
        for step in range(num_steps):
            active = [(w, per_worker_batches[w.worker_id][step])
                      for w in self.workers
                      if step < len(per_worker_batches[w.worker_id])]
            self.optimizer.zero_grad()
            step_loss = 0.0
            for worker, seeds in active:
                subgraph = self.sampler.sample(graph, seeds, rng)
                worker.log(self._batch_work(worker, subgraph))
                batches_this_epoch[worker.worker_id] += 1
                logits = self.model.forward(
                    subgraph, features[subgraph.input_nodes])
                loss = softmax_cross_entropy(logits,
                                             labels[subgraph.seeds])
                # Average gradients across the step's active workers.
                (loss * (1.0 / len(active))).backward()
                step_loss += loss.item() / len(active)
            self.optimizer.step()
            losses.append(step_loss)

        # Simulated epoch time: slowest worker's pipelined makespan plus
        # the synchronous all-reduce per step.
        makespans = []
        bp = dt = nn = fault_seconds = 0.0
        vertices = edges = remote_bytes = 0
        retries = giveups = 0
        tier_seconds = {"hot": 0.0, "warm": 0.0, "cold": 0.0}
        tiered_fetches = False
        for worker, count in zip(self.workers, batches_this_epoch):
            if count == 0:
                continue
            stage_times = worker.epoch_stage_times(count)
            makespans.append(simulate_pipeline(
                stage_times, self.pipeline_mode).makespan)
            recent = worker.work_log[-count:]
            bp += sum(w.bp_seconds for w in recent)
            dt += sum(w.dt_seconds for w in recent)
            nn += sum(w.nn_seconds for w in recent)
            vertices += sum(w.input_vertices for w in recent)
            edges += sum(w.sampled_edges for w in recent)
            remote_bytes += sum(w.remote_feature_bytes for w in recent)
            retries += sum(w.retries for w in recent)
            giveups += sum(w.giveups for w in recent)
            fault_seconds += sum(w.fault_seconds for w in recent)
            for work in recent:
                if work.dt_tier_seconds is not None:
                    tiered_fetches = True
                    for tier in tier_seconds:
                        tier_seconds[tier] += \
                            work.dt_tier_seconds.get(tier, 0.0)
        allreduce = self._allreduce_seconds() * num_steps
        epoch_seconds = max(makespans) + allreduce

        perf = PERF.delta(perf_before)
        if tiered_fetches:
            # Per-tier transfer-seconds and aggregate tier hit rates of
            # this epoch, surfaced through EpochStats.perf so benchmarks
            # and the trainer see the cache's behaviour without holding
            # the cache objects themselves.
            perf["dt_tier_seconds"] = tier_seconds
            perf["cache_tiers"] = self._cache_tier_stats()

        return EpochStats(
            loss=float(np.mean(losses)),
            epoch_seconds=epoch_seconds,
            bp_seconds=bp, dt_seconds=dt, nn_seconds=nn,
            allreduce_seconds=allreduce,
            num_steps=num_steps,
            involved_vertices=vertices,
            involved_edges=edges,
            remote_feature_bytes=remote_bytes,
            batch_size=batch_size,
            retries=retries, giveups=giveups,
            fault_seconds=fault_seconds,
            alive_workers=len(self.alive_workers),
            dropped_vertices=self._dropped,
            perf=perf)

    def _cache_tier_stats(self):
        """Aggregate tier hit statistics across the workers' tiered
        caches (cumulative since cache construction)."""
        from ..transfer.tiered import TieredCache
        hot = warm = cold = 0
        for worker in self.workers:
            if isinstance(worker.cache, TieredCache):
                hot += worker.cache.hot_hits
                warm += worker.cache.warm_hits
                cold += worker.cache.cold_misses
        total = hot + warm + cold
        return {
            "hot_hits": hot, "warm_hits": warm, "cold_misses": cold,
            "hot_hit_rate": hot / total if total else 0.0,
            "warm_hit_rate": warm / total if total else 0.0,
        }
