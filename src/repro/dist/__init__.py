"""Simulated distributed runtime: workers, communication, sync engine."""

from .comm import CommMeter
from .engine import EpochStats, SyncEngine
from .fullbatch import (FullBatchEngine, FullGraphGCN,
                        full_aggregation_matrix)
from .worker import BatchWork, Worker

__all__ = ["CommMeter", "Worker", "BatchWork", "SyncEngine", "EpochStats",
           "FullBatchEngine", "FullGraphGCN", "full_aggregation_matrix"]
