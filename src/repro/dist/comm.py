"""Inter-machine communication metering.

Every remote interaction in the simulated cluster funnels through a
:class:`CommMeter`: the trainer records who sent how many bytes to whom,
and the meter converts volumes into network seconds using the hardware
spec.  Keeping this a separate ledger makes the communication totals of
Figure 5 and the network component of epoch time auditable.
"""

from __future__ import annotations

import numpy as np

from ..errors import TransferError

__all__ = ["CommMeter"]


class CommMeter:
    """Byte/message ledger between ``k`` machines."""

    def __init__(self, num_machines):
        if num_machines < 1:
            raise TransferError(
                f"need at least one machine, got {num_machines}")
        self.num_machines = int(num_machines)
        self.bytes_matrix = np.zeros((num_machines, num_machines),
                                     dtype=np.int64)
        self.messages_matrix = np.zeros((num_machines, num_machines),
                                        dtype=np.int64)

    def record(self, src, dst, num_bytes, messages=1):
        """Record ``num_bytes`` flowing from machine ``src`` to ``dst``."""
        if src == dst:
            return  # local movement is free
        self.bytes_matrix[src, dst] += int(num_bytes)
        self.messages_matrix[src, dst] += int(messages)

    def received_bytes(self, machine):
        """Total bytes machine ``machine`` received."""
        return int(self.bytes_matrix[:, machine].sum())

    def sent_bytes(self, machine):
        """Total bytes machine ``machine`` sent."""
        return int(self.bytes_matrix[machine, :].sum())

    @property
    def total_bytes(self):
        return int(self.bytes_matrix.sum())

    @property
    def total_messages(self):
        return int(self.messages_matrix.sum())

    def receive_time(self, machine, spec):
        """Seconds machine ``machine`` spends receiving, per the spec."""
        return spec.network_time(
            self.received_bytes(machine),
            messages=int(self.messages_matrix[:, machine].sum()))

    def imbalance(self):
        """max/mean of per-machine received bytes (1.0 = balanced)."""
        received = self.bytes_matrix.sum(axis=0).astype(np.float64)
        mean = received.mean()
        return float(received.max() / mean) if mean > 0 else 1.0

    def reset(self):
        """Zero all counters."""
        self.bytes_matrix[:] = 0
        self.messages_matrix[:] = 0
