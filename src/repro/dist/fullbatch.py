"""Full-batch (full-graph) distributed training.

Table 1's second family: NeuGraph, ROC, DistGNN, DGCL, NeutronStar,
Sancus and the other full-batch systems keep *every* vertex in every
layer's computation and update the model once per epoch.  Distributed
across ``k`` machines, each layer requires every machine to fetch the
previous layer's embeddings of its *boundary* in-neighbors (vertices it
aggregates from but does not own) — the communication that dominates
full-graph training.

Two modes:

* ``staleness=0`` — plain synchronous full-batch (NeutronStar-style):
  boundary embeddings are exchanged every layer, every epoch.
* ``staleness=s`` — Sancus-style staleness-aware communication
  avoidance: boundary embeddings are broadcast only every ``s + 1``
  epochs; in between, machines aggregate *stale* boundary values
  (treated as constants — no gradient flows through them), trading a
  bounded accuracy perturbation for (s)/(s+1) of the communication.

The layer math runs for real (numpy autograd), so the accuracy cost of
staleness is measured, not assumed.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from ..kernels import full_graph_adjacency
from ..nn import Tensor, softmax_cross_entropy
from ..nn.layers import GCNConv, MLP, Module
from .engine import EpochStats

__all__ = ["FullGraphGCN", "FullBatchEngine", "full_aggregation_matrix"]


def full_aggregation_matrix(graph, self_loops=True):
    """Row-normalized (mean) aggregation operator of the whole graph.

    A :class:`~repro.kernels.adjacency.KernelCSR` from the kernel seam
    — bit-identical to the historical scipy ``diags @ (csr + identity)``
    construction, but scipy-free, so full-batch training runs on every
    kernel backend.
    """
    return full_graph_adjacency(graph, self_loops=self_loops)


class FullGraphGCN(Module):
    """GCN over the whole graph (no sampling): L GCNConv layers + MLP
    head, mirroring the mini-batch architecture for fair comparison."""

    def __init__(self, in_dim, hidden_dim, num_classes, num_layers, rng,
                 dropout=0.1):
        super().__init__()
        if num_layers < 1:
            raise TrainingError("need at least one GNN layer")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.convs = [GCNConv(dims[i], dims[i + 1], rng)
                      for i in range(num_layers)]
        self.head = MLP([hidden_dim, num_classes], rng)
        self.dropout_p = float(dropout)
        self.rng = rng
        self.num_layers = num_layers

    def forward(self, adjacency, features):
        """Plain full-graph forward (used by tests and single-machine
        runs; the engine drives the layers itself for stale mode)."""
        h = features if isinstance(features, Tensor) else Tensor(features)
        for i, conv in enumerate(self.convs):
            h = conv.forward(adjacency, h).relu()
            if i < len(self.convs) - 1:
                h = h.dropout(self.dropout_p, self.rng,
                              training=self.training)
        return self.head.forward(h)


class FullBatchEngine:
    """Synchronous full-graph training over a partitioned cluster.

    Parameters
    ----------
    dataset, partition:
        The data and its machine assignment.
    model:
        :class:`FullGraphGCN` (or anything with ``convs``/``head``).
    optimizer:
        Optimizer over the model parameters.
    spec:
        Hardware cost model.
    staleness:
        0 = exchange boundary embeddings every epoch; ``s`` > 0 =
        refresh every ``s + 1`` epochs, aggregate stale constants in
        between (Sancus).
    """

    def __init__(self, dataset, partition, model, optimizer, spec,
                 staleness=0, hidden_dim=128):
        if staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.dataset = dataset
        self.partition = partition
        self.model = model
        self.optimizer = optimizer
        self.spec = spec
        self.staleness = int(staleness)
        self.hidden_dim = hidden_dim
        self.adjacency = full_aggregation_matrix(dataset.graph)

        n = dataset.num_vertices
        assignment = partition.assignment
        self.owned = [np.flatnonzero(assignment == p)
                      for p in range(partition.num_parts)]
        # Boundary in-neighbors per machine: aggregated-from but not
        # owned (drives the per-layer communication volume).
        in_indptr, in_indices = dataset.graph.in_csr()
        self.boundary = []
        for p, owned in enumerate(self.owned):
            chunks = [in_indices[in_indptr[v]:in_indptr[v + 1]]
                      for v in owned]
            sources = np.unique(np.concatenate(chunks)) if chunks else \
                np.empty(0, dtype=np.int64)
            self.boundary.append(
                sources[assignment[sources] != p])
        # Per-machine aggregation row slices (for compute metering and
        # stale-mode row-wise forward).
        self.row_slices = [self.adjacency.take_rows(owned)
                           for owned in self.owned]
        self.edges_per_machine = np.array(
            [rows.nnz for rows in self.row_slices])
        # Stale stores: inputs to conv layer l (l >= 1).
        self._stores = [None] * model.num_layers
        self._epoch_index = 0
        self._grad_bytes = sum(p.data.size
                               for p in model.parameters()) * 4

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def _layer_dims(self):
        in_dim = self.dataset.feature_dim
        return [in_dim] + [self.hidden_dim] * self.model.num_layers

    def _compute_seconds(self):
        """Slowest machine's FLOP time for one full forward+backward."""
        dims = self._layer_dims()
        worst = 0.0
        for p, owned in enumerate(self.owned):
            flops = 0.0
            for l in range(self.model.num_layers):
                flops += 2.0 * self.edges_per_machine[p] * dims[l]
                flops += 2.0 * len(owned) * dims[l] * dims[l + 1]
            flops += 2.0 * len(owned) * self.hidden_dim \
                * self.dataset.num_classes
            worst = max(worst, self.spec.compute_time(3.0 * flops))
        return worst

    def _comm_seconds(self, refresh):
        """Boundary-exchange time for the epoch."""
        if self.partition.num_parts == 1:
            return 0.0, 0
        dims = self._layer_dims()
        total_bytes = 0
        worst = 0.0
        for p in range(self.partition.num_parts):
            boundary = len(self.boundary[p])
            layer_bytes = 0
            if self._epoch_index == 0:
                # Feature (layer-0) boundary exchange happens once ever.
                layer_bytes += boundary * dims[0] * 4
            if refresh:
                for l in range(1, self.model.num_layers):
                    # Forward broadcast + backward gradient return.
                    layer_bytes += 2 * boundary * dims[l] * 4
            total_bytes += layer_bytes
            if layer_bytes:
                worst = max(worst, self.spec.network_time(
                    layer_bytes,
                    messages=2 * (self.partition.num_parts - 1)))
        return worst, total_bytes

    def _allreduce_seconds(self):
        k = self.partition.num_parts
        if k == 1:
            return 0.0
        volume = 2.0 * (k - 1) / k * self._grad_bytes
        return self.spec.network_time(volume, messages=2 * (k - 1))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _forward(self, refresh):
        """One full-graph forward, fresh or with stale boundaries."""
        n = self.dataset.num_vertices
        h = Tensor(self.dataset.features)
        for l, conv in enumerate(self.model.convs):
            if refresh or l == 0 or self._stores[l] is None:
                # Fresh layer (features, layer 0, are constants anyway).
                out = conv.forward(self.adjacency, h)
            else:
                pieces = []
                for p, owned in enumerate(self.owned):
                    mixed = h.mask_rows(owned, self._stores[l])
                    pieces.append(conv.forward(self.row_slices[p], mixed))
                out = Tensor.assemble_rows(pieces, self.owned, n)
            h = out.relu()
            if l + 1 < self.model.num_layers:
                # Record this activation as the (stale) input of the
                # next conv layer when refreshing.
                if refresh:
                    self._stores[l + 1] = h.data.copy()
        return self.model.head.forward(h)

    def run_epoch(self):
        """One full-batch epoch (exactly one parameter update)."""
        refresh = (self.staleness == 0
                   or self._epoch_index % (self.staleness + 1) == 0)
        self.model.train()
        logits = self._forward(refresh)
        train_ids = self.dataset.train_ids
        loss = softmax_cross_entropy(logits.gather_rows(train_ids),
                                     self.dataset.labels[train_ids])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()

        compute = self._compute_seconds()
        comm, comm_bytes = self._comm_seconds(refresh)
        allreduce = self._allreduce_seconds()
        self._epoch_index += 1
        return EpochStats(
            loss=loss.item(),
            epoch_seconds=compute + comm + allreduce,
            bp_seconds=0.0,
            dt_seconds=comm,
            nn_seconds=compute,
            allreduce_seconds=allreduce,
            num_steps=1,
            involved_vertices=self.dataset.num_vertices
            * self.model.num_layers,
            involved_edges=int(self.edges_per_machine.sum())
            * self.model.num_layers,
            remote_feature_bytes=comm_bytes,
            batch_size=len(train_ids))

    def evaluate(self, vertex_ids):
        """Full-graph inference accuracy on ``vertex_ids``."""
        self.model.eval()
        logits = self.model.forward(self.adjacency,
                                    self.dataset.features)
        predictions = logits.data.argmax(axis=-1)
        self.model.train()
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        if len(vertex_ids) == 0:
            return 0.0
        return float((predictions[vertex_ids]
                      == self.dataset.labels[vertex_ids]).mean())
