"""A logical training worker (one machine of the simulated cluster).

A worker owns a slice of the training vertices (decided by the
partitioner), an optional GPU feature cache, and produces the per-batch
counts the cost model turns into time.  Model math itself is shared —
synchronous data-parallel SGD keeps one logical parameter copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TrainingError

__all__ = ["Worker", "BatchWork"]


@dataclass
class BatchWork:
    """Counts and simulated stage times of one worker-batch."""

    seeds: int
    sampled_edges: int
    input_vertices: int
    remote_feature_bytes: int
    remote_sample_requests: int
    bp_seconds: float
    dt_seconds: float
    nn_seconds: float
    # Fault accounting (zero on healthy runs): remote-fetch re-requests,
    # exhausted retry budgets, and the simulated seconds they added
    # (already folded into bp_seconds).
    retries: int = 0
    giveups: int = 0
    fault_seconds: float = 0.0
    # Per-tier split of dt_seconds ({"hot": s, "warm": s, "cold": s})
    # when the worker fetches through a TieredCache; None for flat
    # caches.
    dt_tier_seconds: dict = None

    @property
    def stage_times(self):
        return (self.bp_seconds, self.dt_seconds, self.nn_seconds)


@dataclass
class Worker:
    """One machine: its identity, owned training vertices, and cache."""

    worker_id: int
    train_ids: np.ndarray
    cache: object = None           # GPUCache or None
    batches_done: int = 0
    # False once a permanent crash fault killed this machine; a dead
    # worker owns no training vertices and drops out of the all-reduce
    # ring (see SyncEngine's crash handling).
    alive: bool = True
    work_log: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.train_ids = np.asarray(self.train_ids, dtype=np.int64)

    def crash(self):
        """Mark this worker permanently dead and surrender its training
        vertices (returned for redistribution or dropping)."""
        surrendered = self.train_ids
        self.alive = False
        self.train_ids = np.empty(0, dtype=np.int64)
        return surrendered

    def adopt(self, vertex_ids):
        """Take over training vertices surrendered by a crashed peer."""
        if not self.alive:
            raise TrainingError(
                f"worker {self.worker_id} is dead and cannot adopt "
                f"vertices")
        self.train_ids = np.concatenate(
            [self.train_ids, np.asarray(vertex_ids, dtype=np.int64)])

    @property
    def num_train(self):
        return len(self.train_ids)

    def epoch_batches(self, batch_size, rng):
        """This epoch's seed batches over the worker's own vertices."""
        if batch_size < 1:
            raise TrainingError(
                f"batch_size must be >= 1, got {batch_size}")
        order = rng.permutation(self.train_ids)
        return [order[start:start + batch_size]
                for start in range(0, len(order), batch_size)]

    def log(self, work):
        """Record one batch's accounting."""
        self.work_log.append(work)
        self.batches_done += 1

    def epoch_stage_times(self, last_n):
        """Stage-time triples of the most recent ``last_n`` batches."""
        return [w.stage_times for w in self.work_log[-last_n:]]
