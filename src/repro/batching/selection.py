"""Batch selection policies (§6.3.2).

Batch selection decides *which* training vertices form each mini-batch:

* **random** — shuffle and chunk; unbiased, the accuracy winner in the
  paper's comparison;
* **cluster-based** — batches follow graph clusters (Metis), so vertices
  within a batch share many neighbors and the sampled subgraphs shrink
  (Table 6 shows ~2x fewer involved vertices/edges), at the price of
  biased batches, unstable training, and lower final accuracy.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import SamplingError
from ..partition.metis import metis_clusters

__all__ = ["BatchSelector", "RandomBatchSelector", "ClusterBatchSelector"]


class BatchSelector(abc.ABC):
    """Splits a training vertex set into mini-batches, freshly each
    epoch."""

    name = "abstract"

    @abc.abstractmethod
    def batches(self, train_ids, batch_size, rng):
        """Yield int64 arrays of seed vertices covering ``train_ids``."""

    @staticmethod
    def _check(train_ids, batch_size):
        if batch_size < 1:
            raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
        if len(train_ids) == 0:
            raise SamplingError("no training vertices to batch")


class RandomBatchSelector(BatchSelector):
    """Uniformly shuffled fixed-size batches (DGL/PyG default)."""

    name = "random"

    def batches(self, train_ids, batch_size, rng):
        self._check(train_ids, batch_size)
        order = rng.permutation(np.asarray(train_ids, dtype=np.int64))
        for start in range(0, len(order), batch_size):
            yield order[start:start + batch_size]


class ClusterBatchSelector(BatchSelector):
    """Cluster-based batches: Metis clusters become batches.

    The clustering is computed once per (graph, cluster count) and
    cached.  Each epoch, clusters are visited in random order; a
    cluster's training vertices form one batch (large clusters are split,
    consecutive small clusters are merged toward ``batch_size``).

    Parameters
    ----------
    graph:
        The graph to cluster.
    cluster_size:
        Target vertices per cluster; the cluster count is
        ``n / cluster_size``.  Defaults to tracking the batch size.
    """

    name = "cluster"

    def __init__(self, graph, cluster_size=None, seed=0):
        self.graph = graph
        self.cluster_size = cluster_size
        self._seed = seed
        self._clusters = None
        self._cluster_count = None

    def _clustering(self, batch_size):
        size = self.cluster_size or batch_size
        count = max(2, self.graph.num_vertices // max(size, 1))
        if self._clusters is None or self._cluster_count != count:
            self._clusters = metis_clusters(
                self.graph, count, rng=np.random.default_rng(self._seed))
            self._cluster_count = count
        return self._clusters, count

    def batches(self, train_ids, batch_size, rng):
        self._check(train_ids, batch_size)
        train_ids = np.asarray(train_ids, dtype=np.int64)
        clusters, count = self._clustering(batch_size)
        member_cluster = clusters[train_ids]
        pending = []
        for cluster in rng.permutation(count):
            vertices = train_ids[member_cluster == cluster]
            if len(vertices) == 0:
                continue
            pending.extend(vertices.tolist())
            while len(pending) >= batch_size:
                yield np.array(pending[:batch_size], dtype=np.int64)
                pending = pending[batch_size:]
        if pending:
            yield np.array(pending, dtype=np.int64)
