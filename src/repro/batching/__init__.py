"""Batch selection and batch-size scheduling."""

from .schedule import (BatchSizeSchedule, FixedBatchSize,
                       PlateauAdaptiveBatchSize, StepGrowthBatchSize)
from .selection import (BatchSelector, ClusterBatchSelector,
                        RandomBatchSelector)

__all__ = [
    "BatchSelector", "RandomBatchSelector", "ClusterBatchSelector",
    "BatchSizeSchedule", "FixedBatchSize", "StepGrowthBatchSize",
    "PlateauAdaptiveBatchSize",
]
