"""Batch-size schedules, including the paper's adaptive method (§6.3.1).

The paper's analysis: small batches produce large gradient magnitudes
that find the descent direction quickly but can't settle; large batches
produce small gradients that converge precisely but slowly.  Its proposed
*adaptive batch size* therefore starts small and grows toward a maximum —
"first use a large gradient magnitude to find the optimal point
direction and then use a small gradient magnitude to close the optimal
point" — reported to speed convergence by 1.5–1.6x (Figure 10).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import TrainingError

__all__ = ["BatchSizeSchedule", "FixedBatchSize", "StepGrowthBatchSize",
           "PlateauAdaptiveBatchSize"]


class BatchSizeSchedule(abc.ABC):
    """Decides the batch size for each epoch.

    ``observe`` feeds back the epoch's validation accuracy so schedules
    can react to plateaus; stateless schedules ignore it.
    """

    @abc.abstractmethod
    def size(self, epoch):
        """Batch size to use for ``epoch`` (0-based)."""

    def observe(self, epoch, val_accuracy):
        """Feed back validation accuracy after ``epoch`` (optional)."""


class FixedBatchSize(BatchSizeSchedule):
    """The ordinary constant batch size."""

    def __init__(self, batch_size):
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)

    def size(self, epoch):
        return self.batch_size

    def __repr__(self):
        return f"FixedBatchSize({self.batch_size})"


class StepGrowthBatchSize(BatchSizeSchedule):
    """Grow the batch size by a fixed factor every ``grow_every`` epochs.

    The simplest instantiation of the paper's adaptive method: e.g. start
    at 512 and double every few epochs until 8192 (their Reddit recipe).
    """

    def __init__(self, start, maximum, factor=2.0, grow_every=5):
        if start < 1 or maximum < start:
            raise TrainingError(
                f"need 1 <= start <= maximum, got {start}, {maximum}")
        if factor <= 1.0 or grow_every < 1:
            raise TrainingError("factor must be > 1 and grow_every >= 1")
        self.start = int(start)
        self.maximum = int(maximum)
        self.factor = float(factor)
        self.grow_every = int(grow_every)

    def size(self, epoch):
        steps = epoch // self.grow_every
        return int(min(self.start * self.factor ** steps, self.maximum))

    def __repr__(self):
        return (f"StepGrowthBatchSize({self.start}->{self.maximum} "
                f"x{self.factor}/{self.grow_every}ep)")


class PlateauAdaptiveBatchSize(BatchSizeSchedule):
    """Grow the batch size when validation accuracy plateaus.

    Tracks the best validation accuracy seen at the current size; after
    ``patience`` epochs without an improvement of at least ``tolerance``,
    the size is multiplied by ``factor`` (capped at ``maximum``).
    """

    def __init__(self, start, maximum, factor=2.0, patience=3,
                 tolerance=2e-3):
        if start < 1 or maximum < start:
            raise TrainingError(
                f"need 1 <= start <= maximum, got {start}, {maximum}")
        self.start = int(start)
        self.maximum = int(maximum)
        self.factor = float(factor)
        self.patience = int(patience)
        self.tolerance = float(tolerance)
        self._current = int(start)
        self._best = -np.inf
        self._stale = 0

    def size(self, epoch):
        return self._current

    def observe(self, epoch, val_accuracy):
        if val_accuracy > self._best + self.tolerance:
            self._best = val_accuracy
            self._stale = 0
            return
        self._stale += 1
        if self._stale >= self.patience and self._current < self.maximum:
            self._current = int(min(self._current * self.factor,
                                    self.maximum))
            self._stale = 0

    def __repr__(self):
        return (f"PlateauAdaptiveBatchSize({self.start}->{self.maximum}, "
                f"patience={self.patience})")
