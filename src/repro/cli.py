"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the Table 2 dataset suite.
``systems``
    Print the Table 1 system taxonomy.
``train``
    Run one training configuration and print the result summary.
``partition``
    Compare partitioning methods on one dataset.
``advise``
    Inspect a dataset and recommend data-management techniques using
    the paper's lessons learned (see :mod:`repro.core.advisor`).
``serve-bench``
    Run the online-inference serving benchmark (latency/throughput
    across micro-batching policies and cache ratios; see
    :mod:`repro.serve`).
``fleet-bench``
    Run the sharded multi-replica serving benchmark (latency vs
    replica count, routing locality per partitioner, autoscaling and
    crash failover; see :mod:`repro.fleet`).
``chaos``
    Run the fault-recovery benchmark (injected stragglers, flaky
    fetches, crashes; checkpoint/resume bit-match; see
    :mod:`repro.faults`).
``fleet-chaos``
    Run the fleet chaos certification (crash storms, rolling
    stragglers, slowlinks against the resilience layer; availability/
    goodput/p99 gates; see :mod:`repro.fleet.resilience`).
``kernel-bench``
    Time every sparse-kernel backend (:mod:`repro.kernels`) against
    the pinned numpy reference and merge the per-backend rows into
    ``BENCH_hotpath.json``; byte-identity vs the reference is checked
    on the same run.  Exits nonzero if no accelerated backend beats
    the reference on the SpMM microbench.
``lint``
    Run the determinism & numerics static-analysis pass (rule ids
    ``RPRnnn``, baseline grandfathering, text/JSON reports; see
    :mod:`repro.analysis`).  Exits nonzero on new findings.
``arch-lint``
    Run the whole-program architectural analysis pass (rule ids
    ``ARCnnn``: layering contract, kernel-seam and billing-seam
    bypasses, simulated-clock purity, RNG provenance, public-API
    drift; see :mod:`repro.analysis.arch`).  Same baseline/noqa/report
    machinery as ``lint``; exits nonzero on new findings.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import FLAGS, Trainer, TrainingConfig, __version__, load_dataset
from .core import format_table, make_partitioner, table1_rows
from .core.advisor import advise
from .graph import dataset_names, dataset_table
from .partition import measure_workload, quality_report
from .sampling import NeighborSampler

__all__ = ["main", "build_parser"]


def _positive_int(text):
    """``argparse`` type: an integer >= 1 (worker/epoch/request counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {value}")
    return value


def _unit_interval(text):
    """``argparse`` type: a float in [0, 1] (cache ratios)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a value in [0, 1], got {value}")
    return value


def build_parser():
    """The argparse parser for all CLI subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Comprehensive Evaluation of GNN "
                    "Training Systems' (VLDB 2024)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table 2 dataset suite")
    sub.add_parser("systems", help="print the Table 1 system taxonomy")

    train = sub.add_parser("train", help="run one training configuration")
    train.add_argument("dataset", choices=dataset_names())
    train.add_argument("--model", default="gcn",
                       choices=["gcn", "graphsage"])
    train.add_argument("--partitioner", default="metis-ve")
    train.add_argument("--workers", type=_positive_int, default=4)
    train.add_argument("--batch-size", type=_positive_int, default=512)
    train.add_argument("--fanout", type=int, nargs="+", default=[25, 10])
    train.add_argument("--transfer", default="zero-copy")
    train.add_argument("--cache", default=None,
                       choices=[None, "degree", "presample", "random"])
    train.add_argument("--cache-ratio", type=_unit_interval, default=0.0)
    train.add_argument("--cache-policy", default=None,
                       choices=["degree", "presample", "random", "lru",
                                "lfu"],
                       help="feature-cache admission policy (supersedes "
                            "--cache; lru/lfu are the dynamic tiered "
                            "policies)")
    train.add_argument("--cache-budget", type=_unit_interval,
                       default=None, metavar="FRAC",
                       help="total multi-tier cache budget as a "
                            "fraction of |V|, split by "
                            "--cache-hot-fraction into a GPU-hot and a "
                            "pinned-host-warm tier (remaining features "
                            "disk-cold); overrides --cache-ratio")
    train.add_argument("--cache-hot-fraction", type=_unit_interval,
                       default=0.5, metavar="FRAC",
                       help="share of --cache-budget held GPU-hot "
                            "(default 0.5)")
    train.add_argument("--pipeline", default="bp+dt",
                       choices=["none", "bp", "bp+dt"])
    train.add_argument("--epochs", type=_positive_int, default=20)
    train.add_argument("--scale", type=float, default=1.0)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault plan, e.g. "
                            "'straggler@1+3:w0:x4,crash@2:w1' "
                            "(see repro.faults.FaultPlan.parse)")
    train.add_argument("--crash-policy", default="redistribute",
                       choices=["redistribute", "drop"],
                       help="what happens to a crashed worker's "
                            "training vertices")
    train.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write epoch-boundary checkpoints to PATH")
    train.add_argument("--checkpoint-every", type=_positive_int,
                       default=1, metavar="N",
                       help="checkpoint every N epochs (default 1)")
    train.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint if it exists")
    train.add_argument("--sanitize", action="store_true",
                       help="arm the runtime sanitizers (NaN/Inf and "
                            "CSR structure checks; behaviour-"
                            "preserving, see repro.analysis.sanitize)")

    part = sub.add_parser("partition",
                          help="compare partitioning methods")
    part.add_argument("dataset", choices=dataset_names())
    part.add_argument("--parts", type=int, default=4)
    part.add_argument("--scale", type=float, default=1.0)
    part.add_argument("--methods", nargs="+",
                      default=["hash", "metis-v", "metis-ve", "metis-vet",
                               "stream-v", "stream-b"])

    adv = sub.add_parser("advise",
                         help="recommend techniques for a dataset")
    adv.add_argument("dataset", choices=dataset_names())
    adv.add_argument("--scale", type=float, default=1.0)
    adv.add_argument("--workers", type=int, default=4)

    rep = sub.add_parser(
        "reproduce",
        help="run every table/figure benchmark, write one report")
    rep.add_argument("--benchmarks-dir", default="benchmarks")
    rep.add_argument("--out", default="reproduction_report.md")
    rep.add_argument("--only", nargs="*", default=None,
                     help="substring filters on benchmark file names")

    serve = sub.add_parser(
        "serve-bench",
        help="run the online-inference serving benchmark")
    serve.add_argument("dataset", nargs="?", default="ogb-arxiv",
                       choices=dataset_names())
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument("--model", default="gcn",
                       choices=["gcn", "graphsage"])
    serve.add_argument("--train-epochs", type=_positive_int, default=2)
    serve.add_argument("--fanout", type=int, nargs="+", default=[10, 10])
    serve.add_argument("--rate", type=float, default=2000.0,
                       help="mean arrival rate (requests per simulated "
                            "second)")
    serve.add_argument("--requests", type=_positive_int, default=400)
    serve.add_argument("--skew", type=float, default=0.8,
                       help="query popularity skew (0 = uniform)")
    serve.add_argument("--policy", action="append", default=None,
                       metavar="SIZE:WAIT_MS",
                       help="batching policy, repeatable (default "
                            "4:0.5 and 32:4)")
    serve.add_argument("--cache-ratios", type=_unit_interval, nargs="+",
                       default=[0.1, 0.5])
    serve.add_argument("--modes", nargs="+",
                       default=["sampled", "precomputed"],
                       choices=["sampled", "full", "precomputed"])
    serve.add_argument("--tiered-policies", nargs="+",
                       default=["lfu", "static"],
                       choices=["lru", "lfu", "degree", "static"],
                       help="tiered-cache admission policies swept in "
                            "precomputed mode (each --cache-ratios "
                            "budget split half GPU-hot, half "
                            "pinned-host-warm)")
    serve.add_argument("--max-queue", type=int, default=256)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--quick", action="store_true",
                       help="small smoke-test preset")
    serve.add_argument("--sanitize", action="store_true",
                       help="arm the runtime sanitizers for the "
                            "benchmark run")
    serve.add_argument("--out", default="BENCH_serve.json")

    fleet = sub.add_parser(
        "fleet-bench",
        help="run the sharded multi-replica serving benchmark")
    fleet.add_argument("dataset", nargs="?", default="ogb-arxiv",
                       choices=dataset_names())
    fleet.add_argument("--scale", type=float, default=0.3)
    fleet.add_argument("--model", default="gcn",
                       choices=["gcn", "graphsage"])
    fleet.add_argument("--train-epochs", type=_positive_int, default=2)
    fleet.add_argument("--fanout", type=int, nargs="+",
                       default=[10, 10])
    fleet.add_argument("--rate-multiplier", type=float, default=100.0,
                       help="arrival rate as a multiple of the "
                            "single-server benchmark's 2000/s base "
                            "(>= 1)")
    fleet.add_argument("--requests", type=_positive_int, default=2000)
    fleet.add_argument("--skew", type=float, default=0.8,
                       help="query popularity skew (0 = uniform)")
    fleet.add_argument("--replicas", type=_positive_int, nargs="+",
                       default=[1, 2, 4, 8], metavar="N",
                       help="replica counts swept (each N partitions "
                            "the graph into N shards)")
    fleet.add_argument("--partitioner", default="metis-v",
                       choices=["hash", "metis-v", "metis-ve",
                                "metis-vet"],
                       help="partitioner for the scaling sweep")
    fleet.add_argument("--locality-partitioners", nargs="+",
                       default=["hash", "metis-v", "metis-ve",
                                "metis-vet"],
                       choices=["hash", "metis-v", "metis-ve",
                                "metis-vet"],
                       help="partitioners compared in the routing-"
                            "locality sweep")
    fleet.add_argument("--batch-size", type=_positive_int, default=16)
    fleet.add_argument("--max-wait-ms", type=float, default=0.5,
                       help="micro-batch flush deadline in "
                            "milliseconds (>= 0)")
    fleet.add_argument("--cache-ratio", type=_unit_interval,
                       default=0.1, help="per-replica GPU-hot budget")
    fleet.add_argument("--warm-ratio", type=_unit_interval,
                       default=0.1,
                       help="per-replica pinned-host-warm budget")
    fleet.add_argument("--spill-threshold", type=_positive_int,
                       default=64,
                       help="owner queue depth that triggers "
                            "spillover routing")
    fleet.add_argument("--max-queue", type=_positive_int, default=512)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--quick", action="store_true",
                       help="small smoke-test preset")
    fleet.add_argument("--sanitize", action="store_true",
                       help="arm the runtime sanitizers for the "
                            "benchmark run")
    fleet.add_argument("--out", default="BENCH_fleet.json")

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-recovery benchmark (injected faults, "
             "checkpoint/resume bit-match)")
    chaos.add_argument("dataset", nargs="?", default="ogb-arxiv",
                       choices=dataset_names())
    chaos.add_argument("--scale", type=float, default=0.2)
    chaos.add_argument("--model", default="gcn",
                       choices=["gcn", "graphsage"])
    chaos.add_argument("--epochs", type=_positive_int, default=6)
    chaos.add_argument("--workers", type=_positive_int, default=4)
    chaos.add_argument("--halt-epoch", type=_positive_int, default=2,
                       help="epoch of the injected process halt used "
                            "for the resume bit-match check")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--quick", action="store_true",
                       help="small smoke-test preset")
    chaos.add_argument("--sanitize", action="store_true",
                       help="arm the runtime sanitizers for the "
                            "benchmark run")
    chaos.add_argument("--out", default="BENCH_faults.json")

    fchaos = sub.add_parser(
        "fleet-chaos",
        help="run the fleet chaos certification (resilience layer vs "
             "the timeout-only baseline under identical faults)")
    fchaos.add_argument("dataset", nargs="?", default="ogb-arxiv",
                        choices=dataset_names())
    fchaos.add_argument("--scale", type=float, default=0.3)
    fchaos.add_argument("--model", default="gcn",
                        choices=["gcn", "graphsage"])
    fchaos.add_argument("--train-epochs", type=_positive_int,
                        default=2)
    fchaos.add_argument("--replicas", type=_positive_int, default=4)
    fchaos.add_argument("--replication", type=_positive_int, default=2,
                        help="shard redundancy k for the resilient "
                             "configuration (1..replicas)")
    fchaos.add_argument("--rate-multiplier", type=float, default=50.0,
                        help="arrival rate as a multiple of the "
                             "single-server benchmark's 2000/s base")
    fchaos.add_argument("--requests", type=_positive_int, default=1200)
    fchaos.add_argument("--skew", type=float, default=0.8,
                        help="query popularity skew (0 = uniform)")
    fchaos.add_argument("--slo-ms", type=float, default=5.0,
                        help="availability deadline in simulated "
                             "milliseconds")
    fchaos.add_argument("--schedule", default=None, metavar="SPEC",
                        help="replace the composed crash storm with a "
                             "faults.plan spec (times in simulated "
                             "seconds, wN = replica id), e.g. "
                             "'crash@0.002+0.003:w0'")
    fchaos.add_argument("--partitioner", default="metis-v",
                        choices=["hash", "metis-v", "metis-ve",
                                 "metis-vet"])
    fchaos.add_argument("--seed", type=int, default=0)
    fchaos.add_argument("--quick", action="store_true",
                        help="small smoke-test preset")
    fchaos.add_argument("--sanitize", action="store_true",
                        help="arm the runtime sanitizers for the "
                             "benchmark run")
    fchaos.add_argument("--out", default="BENCH_fleet_chaos.json")

    kbench = sub.add_parser(
        "kernel-bench",
        help="time every sparse-kernel backend against the pinned "
             "reference (bit-identity checked on the same run)")
    kbench.add_argument("--seed", type=int, default=7)
    kbench.add_argument("--quick", action="store_true",
                        help="small smoke-test workload")
    kbench.add_argument("--out", default=None,
                        help="benchmark ledger to merge the "
                             "kernel_backends rows into (default: the "
                             "repo's BENCH_hotpath.json)")

    lint = sub.add_parser(
        "lint",
        help="run the determinism & numerics static-analysis pass")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to scan (default: src "
                           "benchmarks examples tools tests)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json"],
                      help="stdout report format")
    lint.add_argument("--baseline", action="store_true",
                      help="grandfather findings recorded in the "
                           "checked-in baseline; fail only on new ones")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to cover the current "
                           "findings and exit 0")
    lint.add_argument("--baseline-file", default=None, metavar="PATH",
                      help="baseline location (default: "
                           "src/repro/analysis/baseline.json)")
    lint.add_argument("--out", default=None, metavar="PATH",
                      help="also write the JSON report to PATH")

    arch = sub.add_parser(
        "arch-lint",
        help="run the whole-program architectural analysis pass")
    arch.add_argument("root", nargs="?", default=None, metavar="ROOT",
                      help="package source root to analyze (default: "
                           "src/repro)")
    arch.add_argument("--format", default="text",
                      choices=["text", "json"],
                      help="stdout report format")
    arch.add_argument("--baseline", action="store_true",
                      help="grandfather findings recorded in the "
                           "checked-in arch baseline; fail only on "
                           "new ones")
    arch.add_argument("--update-baseline", action="store_true",
                      help="rewrite the arch baseline to cover the "
                           "current findings and exit 0")
    arch.add_argument("--baseline-file", default=None, metavar="PATH",
                      help="baseline location (default: "
                           "src/repro/analysis/arch_baseline.json)")
    arch.add_argument("--layers", default=None, metavar="PATH",
                      help="layers.toml contract to enforce (default: "
                           "src/repro/analysis/layers.toml)")
    arch.add_argument("--out", default=None, metavar="PATH",
                      help="also write the JSON report to PATH")
    return parser


def _cmd_datasets(_args):
    print(format_table(dataset_table(), title="Table 2: datasets"))
    return 0


def _cmd_systems(_args):
    print(format_table(table1_rows(), title="Table 1: systems"))
    return 0


def _cmd_train(args):
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH",
              file=sys.stderr)
        return 2
    if args.sanitize:
        FLAGS.sanitize = True
    cache_policy = args.cache_policy or args.cache
    cache_ratio, warm_ratio = args.cache_ratio, 0.0
    if args.cache_budget is not None:
        if cache_policy is None:
            print("error: --cache-budget requires --cache-policy",
                  file=sys.stderr)
            return 2
        if cache_policy == "random":
            print("error: random is a flat-cache ablation policy; "
                  "tiered budgets support degree, presample, lru, lfu",
                  file=sys.stderr)
            return 2
        cache_ratio = args.cache_budget * args.cache_hot_fraction
        warm_ratio = args.cache_budget - cache_ratio
    dataset = load_dataset(args.dataset, scale=args.scale)
    config = TrainingConfig(
        model=args.model, partitioner=args.partitioner,
        num_workers=args.workers, batch_size=args.batch_size,
        fanout=tuple(args.fanout), transfer=args.transfer,
        cache_policy=cache_policy, cache_ratio=cache_ratio,
        cache_warm_ratio=warm_ratio,
        pipeline=args.pipeline, epochs=args.epochs, seed=args.seed,
        crash_policy=args.crash_policy)
    checkpointer = None
    if args.checkpoint:
        from .faults import Checkpointer
        checkpointer = Checkpointer(args.checkpoint,
                                    every=args.checkpoint_every)
    result = Trainer(dataset, config).run(
        checkpointer=checkpointer, resume=args.resume,
        faults=args.faults)
    print(f"dataset            : {dataset.name} "
          f"(|V|={dataset.num_vertices}, |E|={dataset.num_edges})")
    print(f"best val accuracy  : {result.best_val_accuracy:.3f}")
    print(f"test accuracy      : {result.test_accuracy:.3f}")
    print(f"partitioning       : {result.partition_method} "
          f"({result.partition_seconds:.3f}s wall)")
    print(f"mean epoch (sim)   : {1e3 * result.mean_epoch_seconds:.3f} ms")
    for step, share in result.step_breakdown().items():
        print(f"  {step:18s} {100 * share:5.1f}%")
    tiers = (getattr(result.epoch_stats[-1], "perf", None)
             or {}).get("cache_tiers")
    if tiers:
        print(f"cache tiers        : "
              f"hot {100 * tiers['hot_hit_rate']:.1f}% / "
              f"warm {100 * tiers['warm_hit_rate']:.1f}% hits, "
              f"{tiers['cold_misses']} cold misses")
    if args.faults:
        last = result.epoch_stats[-1]
        retries = sum(s.retries for s in result.epoch_stats)
        giveups = sum(s.giveups for s in result.epoch_stats)
        print(f"fault plan         : {args.faults}")
        print(f"  retries={retries} giveups={giveups} "
              f"alive_workers={last.alive_workers} "
              f"dropped={last.dropped_vertices}")
    return 0


def _cmd_partition(args):
    dataset = load_dataset(args.dataset, scale=args.scale)
    sampler = NeighborSampler((10, 10))
    rows = []
    for name in args.methods:
        partitioner = make_partitioner(name)
        result = partitioner.partition(dataset.graph, args.parts,
                                       split=dataset.split,
                                       rng=np.random.default_rng(1))
        quality = quality_report(dataset.graph, result, dataset.split)
        workload = measure_workload(dataset, result, sampler,
                                    batch_size=256,
                                    rng=np.random.default_rng(2))
        rows.append({
            "method": name,
            "seconds": round(result.seconds, 3),
            "edge cut": round(quality["edge_cut_fraction"], 3),
            "train balance": round(quality.get("train_balance", 0.0), 2),
            "total comm (MB)": round(
                workload.total_comm_bytes / 1e6, 2),
            "comp imbalance": round(workload.compute_imbalance, 2),
        })
    print(format_table(rows,
                       title=f"Partitioning comparison ({dataset.name})"))
    return 0


def _cmd_advise(args):
    dataset = load_dataset(args.dataset, scale=args.scale)
    report = advise(dataset, num_workers=args.workers)
    print(f"recommendations for {dataset.name}:")
    for recommendation in report.recommendations:
        print(f"  [{recommendation.topic}] {recommendation.choice}")
        print(f"      {recommendation.reason}")
    return 0


def _cmd_reproduce(args):
    import subprocess
    from pathlib import Path

    bench_dir = Path(args.benchmarks_dir)
    if not bench_dir.is_dir():
        print(f"benchmarks directory not found: {bench_dir}")
        return 1
    files = sorted(bench_dir.glob("bench_*.py"))
    if args.only:
        files = [f for f in files
                 if any(token in f.name for token in args.only)]
    if not files:
        print("no benchmarks matched")
        return 1
    sections = ["# Reproduction report",
                "",
                f"{len(files)} benchmarks, run standalone.", ""]
    failures = 0
    for path in files:
        print(f"running {path.name} ...", flush=True)
        proc = subprocess.run(
            [sys.executable, path.name], cwd=bench_dir,
            capture_output=True, text=True, timeout=1800)
        sections.append(f"## {path.name}\n")
        body = proc.stdout.strip() or "(no output)"
        if proc.returncode != 0:
            failures += 1
            body += f"\n\nFAILED (exit {proc.returncode})\n" \
                    + proc.stderr.strip()[-2000:]
        sections.append(f"```\n{body}\n```\n")
    out = Path(args.out)
    out.write_text("\n".join(sections))
    print(f"wrote {out} ({len(files)} benchmarks, {failures} failures)")
    return 1 if failures else 0


def _parse_policies(specs):
    """``["4:0.5", "32:4"]`` -> ``[(4, 0.0005), (32, 0.004)]``
    (size, max-wait in simulated seconds)."""
    policies = []
    for spec in specs:
        size, _, wait_ms = spec.partition(":")
        policies.append((int(size), float(wait_ms or 0.0) / 1e3))
    return policies


def _cmd_serve_bench(args):
    import json
    from pathlib import Path

    from .serve import run_serve_bench

    if args.sanitize:
        FLAGS.sanitize = True
    policies = _parse_policies(args.policy or ["4:0.5", "32:4"])
    report = run_serve_bench(
        dataset=args.dataset, scale=args.scale, model=args.model,
        train_epochs=args.train_epochs, fanout=tuple(args.fanout),
        rate=args.rate, num_requests=args.requests, skew=args.skew,
        seed=args.seed, policies=policies,
        cache_ratios=tuple(args.cache_ratios),
        modes=tuple(args.modes),
        tiered_policies=tuple(args.tiered_policies),
        max_queue=args.max_queue, quick=args.quick)

    rows = []
    for result in report["results"]:
        tiered = result["warm_ratio"] > 0
        rows.append({
            "mode": result["mode"],
            "policy": result["policy"],
            "cache": round(result["cache_ratio"]
                           + result["warm_ratio"], 3),
            "tiers": result["cache_policy"] if tiered else "-",
            "p50 (ms)": round(1e3 * result["latency_p50"], 3),
            "p95 (ms)": round(1e3 * result["latency_p95"], 3),
            "p99 (ms)": round(1e3 * result["latency_p99"], 3),
            "req/s": round(result["throughput"], 1),
            "hit rate": round(result["cache_hit_rate"], 3),
            "warm hit": round(result["warm_hit_rate"], 3),
            "rejected": result["rejected"],
        })
    print(format_table(
        rows, title=f"Serving benchmark ({report['dataset']}, "
                    f"{report['model']})"))
    print(f"invariant (precomputed == full-fanout, atol=0): "
          f"{'ok' if report['invariant_exact_match'] else 'VIOLATED'}")
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2))
    print(f"wrote {out} ({len(report['results'])} configurations)")
    return 0


def _cmd_fleet_bench(args):
    import json
    from pathlib import Path

    from .fleet import run_fleet_bench

    if args.sanitize:
        FLAGS.sanitize = True
    if args.rate_multiplier < 1:
        print(f"error: --rate-multiplier must be >= 1, got "
              f"{args.rate_multiplier}", file=sys.stderr)
        return 2
    if args.max_wait_ms < 0:
        print(f"error: --max-wait-ms must be >= 0, got "
              f"{args.max_wait_ms}", file=sys.stderr)
        return 2
    if args.cache_ratio + args.warm_ratio > 1.0:
        print(f"error: --cache-ratio + --warm-ratio must be <= 1, got "
              f"{args.cache_ratio + args.warm_ratio}", file=sys.stderr)
        return 2
    report = run_fleet_bench(
        dataset=args.dataset, scale=args.scale, model=args.model,
        train_epochs=args.train_epochs, fanout=tuple(args.fanout),
        rate_multiplier=args.rate_multiplier,
        num_requests=args.requests, skew=args.skew, seed=args.seed,
        replica_counts=tuple(args.replicas),
        partitioner=args.partitioner,
        locality_partitioners=tuple(args.locality_partitioners),
        batch_size=args.batch_size,
        max_wait=args.max_wait_ms / 1e3,
        cache_ratio=args.cache_ratio, warm_ratio=args.warm_ratio,
        spill_threshold=args.spill_threshold,
        max_queue=args.max_queue, quick=args.quick)

    rows = []
    for result in report["scaling"]:
        rows.append({
            "replicas": result["num_replicas"],
            "p50 (ms)": round(1e3 * result["latency_p50"], 3),
            "p95 (ms)": round(1e3 * result["latency_p95"], 3),
            "p99 (ms)": round(1e3 * result["latency_p99"], 3),
            "req/s": round(result["throughput"], 1),
            "locality": round(result["routing_locality"], 3),
            "hot hit": round(result["hot_hit_rate"], 3),
            "rejected": result["rejected"],
        })
    print(format_table(
        rows, title=f"Fleet scaling ({report['dataset']}, "
                    f"{report['partitioner']}, "
                    f"rate={report['load']['rate']:g}/s)"))
    rows = []
    for result in report["locality"]:
        rows.append({
            "partitioner": result["partitioner"],
            "mode": result["mode"],
            "locality": round(result["routing_locality"], 3),
            "remote rows": round(result["remote_row_fraction"], 3),
            "p99 (ms)": round(1e3 * result["latency_p99"], 3),
        })
    print(format_table(rows, title="Routing locality"))
    print(f"invariant (fleet == single server, bit-exact): "
          f"{'ok' if report['invariant_exact_match'] else 'VIOLATED'}")
    print(f"failover: {report['failover']['failovers']} failovers, "
          f"{report['failover']['requeued']} requeued, "
          f"{report['failover']['completed']} completed")
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2))
    print(f"wrote {out} ({len(report['scaling'])} replica counts, "
          f"{len(report['locality'])} locality rows)")
    return 0 if report["invariant_exact_match"] else 1


def _cmd_chaos(args):
    import json
    from pathlib import Path

    from .faults import run_fault_bench

    if args.sanitize:
        FLAGS.sanitize = True
    report = run_fault_bench(
        dataset=args.dataset, scale=args.scale, model=args.model,
        epochs=args.epochs, workers=args.workers,
        halt_epoch=args.halt_epoch, seed=args.seed, quick=args.quick)

    rows = []
    for row in report["scenarios"]:
        rows.append({
            "scenario": row["scenario"],
            "plan": row["plan"],
            "epoch overhead": f"{100 * row['epoch_time_overhead']:+.1f}%",
            "retries": row["retries"],
            "giveups": row["giveups"],
            "alive": row["alive_workers"],
            "dropped": row["dropped_vertices"],
            "acc delta": round(row["accuracy_delta"], 3),
        })
    print(format_table(
        rows, title=f"Fault-recovery benchmark ({report['dataset']}, "
                    f"{report['workers']} workers)"))
    resume_ok = report["halt_fired"] and report["resume_exact"]
    print(f"halt@{report['halt_epoch']} fired, resumed curve "
          f"bit-identical: {'ok' if resume_ok else 'VIOLATED'}")
    print(f"fault timeline deterministic under fixed seed: "
          f"{'ok' if report['plan_deterministic'] else 'VIOLATED'}")
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2))
    print(f"wrote {out} ({len(report['scenarios'])} scenarios)")
    return 0 if resume_ok and report["plan_deterministic"] else 1


def _cmd_fleet_chaos(args):
    import json
    from pathlib import Path

    from .errors import ServingError
    from .fleet import run_fleet_chaos_bench

    if args.sanitize:
        FLAGS.sanitize = True
    if args.rate_multiplier < 1:
        print(f"error: --rate-multiplier must be >= 1, got "
              f"{args.rate_multiplier}", file=sys.stderr)
        return 2
    if not 1 <= args.replication <= args.replicas:
        print(f"error: --replication must be in [1, {args.replicas}], "
              f"got {args.replication}", file=sys.stderr)
        return 2
    if args.slo_ms <= 0:
        print(f"error: --slo-ms must be > 0, got {args.slo_ms}",
              file=sys.stderr)
        return 2
    try:
        report = run_fleet_chaos_bench(
            dataset=args.dataset, scale=args.scale, model=args.model,
            train_epochs=args.train_epochs,
            num_replicas=args.replicas,
            replication=args.replication,
            rate_multiplier=args.rate_multiplier,
            num_requests=args.requests, skew=args.skew,
            seed=args.seed, partitioner=args.partitioner,
            slo=args.slo_ms / 1e3, schedule=args.schedule,
            quick=args.quick)
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    rows = []
    for row in report["scenarios"]:
        for config in ("baseline", "resilient"):
            result = row[config]
            rows.append({
                "scenario": row["scenario"],
                "config": config,
                "avail": round(result["availability"], 4),
                "goodput/s": round(result["goodput"], 1),
                "p99 (ms)": round(1e3 * result["latency_p99"], 3),
                "dropped": result["dropped"],
                "requeued": result["requeued"],
                "backup": result.get("backup_completions", 0),
            })
    print(format_table(
        rows, title=f"Fleet chaos ({report['dataset']}, "
                    f"{report['num_replicas']} replicas, "
                    f"k={report['replication']}, "
                    f"SLO={1e3 * report['slo_seconds']:g}ms)"))
    for gate, ok in report["gates"].items():
        print(f"gate {gate}: {'ok' if ok else 'VIOLATED'}")
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2))
    print(f"wrote {out} ({len(report['scenarios'])} scenarios)")
    return 0 if all(report["gates"].values()) else 1


def _cmd_kernel_bench(args):
    from .kernels.bench import (HOTPATH_PATH, format_report,
                                merge_into_hotpath, run_kernel_bench)

    results = run_kernel_bench(quick=args.quick, seed=args.seed)
    print(format_report(results))
    out = merge_into_hotpath(
        results, path=args.out if args.out else HOTPATH_PATH)
    print(f"merged kernel_backends into {out} "
          f"(auto backend: {results['auto_backend']})")
    spmm = results["spmm"]
    accelerated = [name for name in spmm["backends"]
                   if name != "reference"]
    if accelerated and spmm["best_speedup"] <= 1.0:
        print("gate spmm_speedup: VIOLATED (no accelerated backend "
              "beat the reference)", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args):
    # Imported lazily: the analysis layer is light, but the lint
    # command must never become a reason cli startup grows heavier.
    from pathlib import Path

    from .analysis import lint_paths, render_json, render_text, write_json
    from .analysis.baseline import (load_baseline, save_baseline_counts,
                                    to_baseline)

    paths = args.paths or [p for p in ("src", "benchmarks", "examples",
                                       "tools", "tests")
                           if Path(p).exists()]
    if not paths:
        print("error: no lint paths found (run from the repo root or "
              "pass paths)", file=sys.stderr)
        return 2

    try:
        if args.update_baseline:
            existing = load_baseline(args.baseline_file)
            result = lint_paths(paths, baseline=existing)
            current = to_baseline(result.findings)["findings"]
            # Merge: entries for files outside this run's scope are
            # carried over (a partial run must not wipe them); stale
            # entries — scanned-and-unmatched or file gone — are
            # pruned along with everything the fresh counts replace.
            scanned = set(result.scanned_paths)
            kept = {key: count for key, count in existing.items()
                    if key not in current
                    and key.split("::", 1)[0] not in scanned
                    and Path(key.split("::", 1)[0]).exists()}
            written = save_baseline_counts({**kept, **current},
                                           path=args.baseline_file)
            pruned = len(existing) - len(kept) \
                - sum(1 for key in current if key in existing)
            print(f"wrote {written} covering {len(result.findings)} "
                  f"findings across {result.files_scanned} files "
                  f"({pruned} stale entries pruned)")
            return 0
        baseline = load_baseline(args.baseline_file) if args.baseline \
            else None
        result = lint_paths(paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        import json
        print(json.dumps(render_json(result), indent=2))
    else:
        print(render_text(result))
    if args.out:
        write_json(result, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if result.clean else 1


def _cmd_arch_lint(args):
    # Lazy for the same reason as _cmd_lint: the whole-program pass
    # must only ever run when asked for.
    from .analysis import render_json, render_text, write_json
    from .analysis.arch import arch_lint, load_arch_baseline
    from .analysis.baseline import save_baseline
    from .analysis.arch import DEFAULT_ARCH_BASELINE_PATH
    from .analysis.rules.arch import arch_rule_table

    baseline_path = args.baseline_file or DEFAULT_ARCH_BASELINE_PATH
    try:
        if args.update_baseline:
            result = arch_lint(root=args.root,
                               config_path=args.layers)
            written = save_baseline(result.findings,
                                    path=baseline_path)
            print(f"wrote {written} covering {len(result.findings)} "
                  f"findings across {result.files_scanned} modules")
            return 0
        baseline = load_arch_baseline(args.baseline_file) \
            if args.baseline else None
        result = arch_lint(root=args.root, config_path=args.layers,
                           baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = arch_rule_table()
    if args.format == "json":
        import json
        print(json.dumps(render_json(result, rule_rows=rows),
                         indent=2))
    else:
        print(render_text(result))
    if args.out:
        write_json(result, args.out, rule_rows=rows)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if result.clean else 1


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "systems": _cmd_systems,
                "train": _cmd_train, "partition": _cmd_partition,
                "advise": _cmd_advise, "reproduce": _cmd_reproduce,
                "serve-bench": _cmd_serve_bench,
                "fleet-bench": _cmd_fleet_bench, "chaos": _cmd_chaos,
                "fleet-chaos": _cmd_fleet_chaos,
                "kernel-bench": _cmd_kernel_bench, "lint": _cmd_lint,
                "arch-lint": _cmd_arch_lint}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
