"""Atomic, checksummed training checkpoints.

A checkpoint captures everything :class:`~repro.core.trainer.Trainer`
needs to continue a run as if it had never stopped: model parameters,
optimizer state, the training rng's bit-generator state, the curve and
per-epoch stats so far, and the early-stopping bookkeeping.  Restoring
it reproduces the uninterrupted run's loss/accuracy curve bit-identically
(pinned in ``tests/faults/test_checkpoint.py``), because mini-batch
formation consumes the restored rng exactly where the original left off
at the epoch boundary.

The file format is crash-safe and self-verifying:

* writes go to a temp file in the same directory, flushed and fsynced,
  then atomically renamed over the target (a crash mid-write leaves the
  previous checkpoint intact);
* the payload (stdlib pickle of numpy state) is prefixed by a magic
  string and a JSON header carrying its SHA-256, verified on load —
  truncation or bit-rot raises :class:`~repro.errors.CheckpointError`
  instead of resuming from garbage.

Checkpoints are pickle files: load them only from paths you wrote
(the usual pickle trust model; these are private training artifacts,
not an interchange format).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from ..errors import CheckpointError

__all__ = ["Checkpointer"]

_MAGIC = b"REPRO-CKPT-v1\n"


class Checkpointer:
    """Writes/reads one checkpoint file with atomic replace semantics.

    Parameters
    ----------
    path:
        Checkpoint file location.  The parent directory is created on
        first save.
    every:
        Save cadence in epochs: the trainer saves after epoch ``e`` when
        ``(e + 1) % every == 0`` (and always after the final epoch).
    """

    def __init__(self, path, every=1):
        self.path = Path(path)
        if int(every) < 1:
            raise CheckpointError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.saves = 0

    def exists(self):
        """Whether a checkpoint file is present."""
        return self.path.is_file()

    def due(self, epoch):
        """Whether the trainer should save after completing ``epoch``."""
        return (epoch + 1) % self.every == 0

    def save(self, state):
        """Atomically persist ``state`` (a picklable dict)."""
        payload = pickle.dumps(state, protocol=4)
        header = json.dumps({
            "version": 1,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        }).encode("ascii") + b"\n"

        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.saves += 1

    def load(self):
        """Read, verify, and unpickle the checkpoint.

        Raises :class:`CheckpointError` when the file is missing,
        truncated, not a checkpoint, or fails its checksum.
        """
        if not self.exists():
            raise CheckpointError(f"no checkpoint at {self.path}")
        raw = self.path.read_bytes()
        if not raw.startswith(_MAGIC):
            raise CheckpointError(
                f"{self.path} is not a repro checkpoint (bad magic)")
        body = raw[len(_MAGIC):]
        newline = body.find(b"\n")
        if newline < 0:
            raise CheckpointError(f"{self.path} is truncated (no header)")
        try:
            header = json.loads(body[:newline].decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise CheckpointError(
                f"{self.path} has a corrupt header") from None
        payload = body[newline + 1:]
        if len(payload) != header.get("payload_bytes"):
            raise CheckpointError(
                f"{self.path} is truncated: expected "
                f"{header.get('payload_bytes')} payload bytes, "
                f"found {len(payload)}")
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointError(
                f"{self.path} failed its integrity check "
                f"(sha256 mismatch)")
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(
                f"{self.path} could not be unpickled: {exc}") from exc

    def delete(self):
        """Remove the checkpoint file if present."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
