"""Atomic, checksummed training checkpoints.

A checkpoint captures everything :class:`~repro.core.trainer.Trainer`
needs to continue a run as if it had never stopped: model parameters,
optimizer state, the training rng's bit-generator state, the curve and
per-epoch stats so far, and the early-stopping bookkeeping.  Restoring
it reproduces the uninterrupted run's loss/accuracy curve bit-identically
(pinned in ``tests/faults/test_checkpoint.py``), because mini-batch
formation consumes the restored rng exactly where the original left off
at the epoch boundary.

The file format is crash-safe and self-verifying, with a two-phase
commit ordered so that a crash at *any* point leaves a recoverable
state:

1. the payload file (magic string + JSON header carrying the payload's
   SHA-256 + stdlib pickle of numpy state) is written to a temp file in
   the same directory, flushed and fsynced;
2. the previous checkpoint and its sidecar — if any — are rotated to
   ``<name>.prev`` / ``<name>.prev.sha256`` so recovery always has a
   known-good fallback;
3. the new payload is atomically renamed over the target;
4. the checksum sidecar ``<name>.sha256`` is written **last** (temp +
   fsync + rename).  The sidecar is the commit record: a checkpoint
   without a matching sidecar was interrupted mid-write and must not be
   trusted.

:meth:`Checkpointer.load` verifies magic, header, payload length,
header checksum, and finally the sidecar; any failure raises a typed
error (:class:`~repro.errors.CheckpointIntegrityError` for files that
exist but cannot be trusted).  :meth:`Checkpointer.load_latest` is the
recovery entry point: it falls back to the previous valid checkpoint
when the newest one fails verification.

Checkpoints are pickle files: load them only from paths you wrote
(the usual pickle trust model; these are private training artifacts,
not an interchange format).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from ..errors import CheckpointError, CheckpointIntegrityError

__all__ = ["Checkpointer"]

_MAGIC = b"REPRO-CKPT-v1\n"


class Checkpointer:
    """Writes/reads one checkpoint file with atomic replace semantics.

    Parameters
    ----------
    path:
        Checkpoint file location.  The parent directory is created on
        first save.  Three companion files live next to it: the
        ``.sha256`` checksum sidecar (written last, acts as the commit
        record) and the ``.prev``/``.prev.sha256`` pair holding the
        previous checkpoint for fallback recovery.
    every:
        Save cadence in epochs: the trainer saves after epoch ``e`` when
        ``(e + 1) % every == 0`` (and always after the final epoch).
    """

    def __init__(self, path, every=1):
        self.path = Path(path)
        if int(every) < 1:
            raise CheckpointError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.saves = 0

    @property
    def sidecar_path(self):
        """The checksum sidecar committed last on every save."""
        return self.path.with_name(self.path.name + ".sha256")

    @property
    def previous_path(self):
        """Where the prior checkpoint is rotated to on save."""
        return self.path.with_name(self.path.name + ".prev")

    @property
    def previous_sidecar_path(self):
        return self.path.with_name(self.path.name + ".prev.sha256")

    def exists(self):
        """Whether a checkpoint file is present."""
        return self.path.is_file()

    def due(self, epoch):
        """Whether the trainer should save after completing ``epoch``."""
        return (epoch + 1) % self.every == 0

    def save(self, state):
        """Atomically persist ``state`` (a picklable dict).

        Write order is payload first, checksum sidecar last: the
        sidecar only ever describes a fully-fsynced payload, so a crash
        between the two steps is detectable (missing/mismatched
        sidecar) rather than silent.
        """
        payload = pickle.dumps(state, protocol=4)
        digest = hashlib.sha256(payload).hexdigest()
        header = json.dumps({
            "version": 1,
            "sha256": digest,
            "payload_bytes": len(payload),
        }).encode("ascii") + b"\n"

        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.path, _MAGIC + header + payload,
                           rotate=True)
        self._write_atomic(self.sidecar_path,
                           digest.encode("ascii") + b"\n")
        self.saves += 1

    def _write_atomic(self, target, blob, rotate=False):
        """Temp + fsync + rename ``blob`` into ``target``; with
        ``rotate``, first preserve the current checkpoint pair as the
        ``.prev`` fallback."""
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=target.name + ".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            if rotate:
                self._rotate_previous()
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target

    def _rotate_previous(self):
        """Move the current checkpoint + sidecar to the ``.prev`` slot.

        Only a *committed* pair (payload and sidecar both present) is
        worth keeping as a fallback; an uncommitted payload is dropped
        so ``.prev`` never regresses to a corrupt generation.
        """
        if not (self.path.is_file() and self.sidecar_path.is_file()):
            return
        os.replace(self.sidecar_path, self.previous_sidecar_path)
        os.replace(self.path, self.previous_path)

    def load(self):
        """Read, verify, and unpickle the checkpoint.

        Raises :class:`CheckpointError` when the file is missing and
        :class:`CheckpointIntegrityError` when it exists but is
        truncated, not a checkpoint, fails its checksum, or its
        checksum sidecar is missing/mismatched (an interrupted save).
        """
        return self._load_verified(self.path, self.sidecar_path)

    def load_latest(self):
        """Load the newest checkpoint that passes verification.

        The recovery entry point: tries the current checkpoint first
        and, if it exists but fails integrity checks (e.g. the process
        died between writing the payload and committing the sidecar),
        falls back to the ``.prev`` pair rotated out by the last
        successful save.  Raises the original error when no fallback
        exists or the fallback is also bad.
        """
        try:
            return self._load_verified(self.path, self.sidecar_path)
        except CheckpointIntegrityError as exc:
            if not self.previous_path.is_file():
                raise
            try:
                return self._load_verified(self.previous_path,
                                           self.previous_sidecar_path)
            except CheckpointError:
                raise exc from None

    def _load_verified(self, path, sidecar):
        if not path.is_file():
            raise CheckpointError(f"no checkpoint at {path}")
        raw = path.read_bytes()
        if not raw.startswith(_MAGIC):
            raise CheckpointIntegrityError(
                f"{path} is not a repro checkpoint (bad magic)")
        body = raw[len(_MAGIC):]
        newline = body.find(b"\n")
        if newline < 0:
            raise CheckpointIntegrityError(
                f"{path} is truncated (no header)")
        try:
            header = json.loads(body[:newline].decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise CheckpointIntegrityError(
                f"{path} has a corrupt header") from None
        payload = body[newline + 1:]
        if len(payload) != header.get("payload_bytes"):
            raise CheckpointIntegrityError(
                f"{path} is truncated: expected "
                f"{header.get('payload_bytes')} payload bytes, "
                f"found {len(payload)}")
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointIntegrityError(
                f"{path} failed its integrity check "
                f"(sha256 mismatch)")
        if not sidecar.is_file():
            raise CheckpointIntegrityError(
                f"{path} has no checksum sidecar ({sidecar.name}): "
                f"the save was interrupted before the checksum was "
                f"committed")
        committed = sidecar.read_bytes().decode("ascii",
                                                "replace").strip()
        if committed != digest:
            raise CheckpointIntegrityError(
                f"{path} disagrees with its checksum sidecar "
                f"({sidecar.name}): the sidecar was partially "
                f"written or belongs to another generation")
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(
                f"{path} could not be unpickled: {exc}") from exc

    def delete(self):
        """Remove the checkpoint, sidecar, and fallback files."""
        for target in (self.path, self.sidecar_path,
                       self.previous_path, self.previous_sidecar_path):
            try:
                target.unlink()
            except FileNotFoundError:
                pass
