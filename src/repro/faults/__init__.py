"""Fault injection, retry, and checkpoint/resume for the simulated
cluster.

The paper evaluates on a healthy 4-node testbed; this subsystem asks
what its cost breakdown looks like when the cluster is *not* healthy —
stragglers, flaky remote fetches, degraded links, crashed workers — and
provides the recovery machinery (retries with exponential backoff,
epoch-boundary checkpoints, crash-resume, graceful degradation) that a
production deployment needs.  Everything is seeded and replayed on the
simulated clock, so fault timelines are bit-reproducible: something a
physical testbed cannot promise.

Layout
------
:mod:`repro.faults.plan`
    :class:`FaultEvent` / :class:`FaultPlan` (the seeded schedule) and
    :class:`FaultInjector` (replays it against the epoch clock).
:mod:`repro.faults.retry`
    :class:`RetryPolicy` — bounded attempts, exponential backoff,
    deterministic jitter, per-attempt timeout.
:mod:`repro.faults.checkpoint`
    :class:`Checkpointer` — atomic temp-write-then-rename checkpoint
    files with SHA-256 integrity checks.
:mod:`repro.faults.bench`
    The fault-recovery benchmark behind ``repro chaos`` and
    ``benchmarks/bench_fault_recovery.py``.
"""

from .checkpoint import Checkpointer
from .plan import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from .retry import RetryPolicy

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "FAULT_KINDS",
           "RetryPolicy", "Checkpointer", "run_fault_bench"]


def run_fault_bench(*args, **kwargs):
    """Lazy re-export of :func:`repro.faults.bench.run_fault_bench`
    (imports the training stack only when actually benchmarking)."""
    from .bench import run_fault_bench as _run
    return _run(*args, **kwargs)
