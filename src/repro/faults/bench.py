"""The fault-recovery benchmark: one reusable chaos sweep.

Trains a healthy baseline, then re-runs the *same* seeded configuration
under a set of fault scenarios (straggler, flaky fetches, degraded
link, permanent worker crash under both crash policies) and reports the
simulated epoch-time overhead, retry/giveup counters, and accuracy
deltas of each.  Two properties are *checked*, not just reported:

``resume_exact``
    A run killed by an injected ``halt`` and resumed from its last
    epoch-boundary checkpoint must reproduce the uninterrupted run's
    loss/accuracy/epoch-time curve bit-identically.
``plan_deterministic``
    Re-running a scenario with the same :class:`~repro.faults.plan.
    FaultPlan` seed must reproduce the identical fault timeline: same
    retry counts, same simulated epoch times, same losses.

Shared by the ``repro chaos`` CLI command and
``benchmarks/bench_fault_recovery.py`` (which writes
``BENCH_faults.json``).
"""

from __future__ import annotations

import os
import tempfile

from ..core import Trainer
from ..core.config import TrainingConfig
from ..errors import FaultError
from ..graph import load_dataset
from .checkpoint import Checkpointer
from .plan import FaultPlan

__all__ = ["run_fault_bench", "default_scenarios", "QUICK_OVERRIDES"]

#: Parameter overrides for smoke runs (CI, ``--quick``).
QUICK_OVERRIDES = dict(scale=0.12, epochs=5, workers=4, halt_epoch=2)


def default_scenarios(workers, epochs):
    """The standard chaos sweep: ``(name, spec, crash_policy)`` rows.

    Fault epochs scale with the run length so every scenario is active
    for a meaningful share of training even in ``--quick`` runs.
    """
    mid = max(1, epochs // 3)
    span = max(1, epochs - mid)
    last = workers - 1
    return [
        ("straggler", f"straggler@{mid}+{span}:w0:x4", "redistribute"),
        ("flaky", f"flaky@{mid}+{span}:w0:p0.3", "redistribute"),
        ("slowlink", f"slowlink@{mid}+{span}:x0.25", "redistribute"),
        ("crash-redistribute", f"crash@{mid}:w{last}", "redistribute"),
        ("crash-drop", f"crash@{mid}:w{last}", "drop"),
    ]


def _curve_summary(result):
    """JSON-friendly per-run numbers the report keeps for every run."""
    curve = result.curve
    stats = result.epoch_stats
    return {
        "epochs_run": curve.num_epochs,
        "mean_epoch_seconds": curve.mean_epoch_seconds,
        "total_train_seconds": result.total_train_seconds,
        "best_val_accuracy": result.best_val_accuracy,
        "test_accuracy": result.test_accuracy,
        "losses": [float(x) for x in curve.losses],
        "epoch_seconds": [float(x) for x in curve.epoch_seconds],
        "retries": int(sum(s.retries for s in stats)),
        "giveups": int(sum(s.giveups for s in stats)),
        "fault_seconds": float(sum(s.fault_seconds for s in stats)),
        "alive_workers": int(stats[-1].alive_workers) if stats else 0,
        "dropped_vertices": int(stats[-1].dropped_vertices)
        if stats else 0,
    }


def _curves_match(a, b):
    """Bit-identity of two runs' loss/accuracy/epoch-time series."""
    return (a.curve.losses == b.curve.losses
            and a.curve.val_accuracies == b.curve.val_accuracies
            and a.curve.epoch_seconds == b.curve.epoch_seconds)


def run_fault_bench(dataset="ogb-arxiv", scale=0.2, model="gcn",
                    epochs=6, workers=4, halt_epoch=2, seed=0,
                    scenarios=None, checkpoint_dir=None, quick=False):
    """Run the full chaos sweep; returns a JSON-serializable dict.

    ``scenarios`` overrides :func:`default_scenarios` with
    ``(name, fault spec string, crash_policy)`` triples; ``quick=True``
    applies :data:`QUICK_OVERRIDES` for a fast smoke.  Checkpoints for
    the halt/resume check go to ``checkpoint_dir`` (default: a
    temporary directory removed afterwards).
    """
    if quick:
        scale = QUICK_OVERRIDES["scale"]
        epochs = QUICK_OVERRIDES["epochs"]
        workers = QUICK_OVERRIDES["workers"]
        halt_epoch = QUICK_OVERRIDES["halt_epoch"]
    if not 0 < halt_epoch < epochs:
        raise FaultError(
            f"halt epoch must be in (0, epochs), got {halt_epoch}")

    data = load_dataset(dataset, scale=scale)

    def config(crash_policy="redistribute"):
        return TrainingConfig(
            model=model, epochs=epochs, num_workers=workers,
            batch_size=256, fanout=(10, 10), seed=seed,
            early_stop_patience=0, crash_policy=crash_policy)

    healthy = Trainer(data, config()).run()
    baseline = _curve_summary(healthy)

    rows = []
    for name, spec, crash_policy in (
            scenarios or default_scenarios(workers, epochs)):
        plan = FaultPlan.parse(spec, seed=seed)
        result = Trainer(data, config(crash_policy)).run(faults=plan)
        row = _curve_summary(result)
        row.update({
            "scenario": name,
            "plan": plan.describe(),
            "crash_policy": crash_policy,
            "epoch_time_overhead":
                row["mean_epoch_seconds"] / baseline["mean_epoch_seconds"]
                - 1.0,
            "accuracy_delta":
                row["test_accuracy"] - baseline["test_accuracy"],
            # Non-destructive faults only stretch the simulated clock;
            # the arithmetic — and therefore the loss curve — must be
            # untouched.  Crashes change batch composition, so their
            # curves legitimately diverge.
            "losses_match_healthy": row["losses"] == baseline["losses"],
        })
        rows.append(row)

    # ------------------------------------------------------------------
    # Checked property 1: halt at `halt_epoch`, resume, bit-match.
    # ------------------------------------------------------------------
    owns_dir = checkpoint_dir is None
    if owns_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        checkpoint_dir = tmp.name
    halt_plan = FaultPlan.parse(f"halt@{halt_epoch}", seed=seed)
    ckpt = Checkpointer(
        os.path.join(checkpoint_dir, "chaos.ckpt"), every=1)
    halted = False
    try:
        Trainer(data, config()).run(checkpointer=ckpt, faults=halt_plan)
    except FaultError:
        halted = True
    resumed = Trainer(data, config()).run(
        checkpointer=ckpt, resume=True, faults=halt_plan)
    resume_exact = halted and _curves_match(resumed, healthy) \
        and resumed.test_accuracy == healthy.test_accuracy
    if owns_dir:
        tmp.cleanup()

    # ------------------------------------------------------------------
    # Checked property 2: same plan seed => identical fault timeline.
    # ------------------------------------------------------------------
    _, flaky_spec, _ = (scenarios or default_scenarios(workers, epochs))[1]
    replay = [Trainer(data, config()).run(
        faults=FaultPlan.parse(flaky_spec, seed=seed)) for _ in range(2)]
    plan_deterministic = (
        _curves_match(replay[0], replay[1])
        and [s.retries for s in replay[0].epoch_stats]
        == [s.retries for s in replay[1].epoch_stats]
        and [s.giveups for s in replay[0].epoch_stats]
        == [s.giveups for s in replay[1].epoch_stats])

    return {
        "dataset": data.name,
        "scale": scale,
        "model": model,
        "epochs": epochs,
        "workers": workers,
        "seed": seed,
        "halt_epoch": halt_epoch,
        "baseline": baseline,
        "scenarios": rows,
        "halt_fired": halted,
        "resume_exact": bool(resume_exact),
        "plan_deterministic": bool(plan_deterministic),
    }
