"""Retry policy for remote fetches: bounded attempts, exponential
backoff, deterministic jitter.

A transient remote-fetch failure (see ``flaky`` events in
:mod:`repro.faults.plan`) costs simulated time, not correctness: the
engine re-requests until the fetch succeeds or the attempt budget is
exhausted, paying the per-attempt timeout plus an exponentially growing
backoff delay.  After the final attempt fails the fetch is served by the
*fail-slow fallback* — a full-timeout re-request answered by a replica —
so training data is never lost; the run just gets slower and the giveup
is counted.  This keeps the loss curve bit-identical between healthy and
flaky runs (only simulated seconds and counters differ), which is what
makes fault overhead separable in benchmarks.

Jitter is deterministic: a hash of ``(attempt, key)`` spreads delays in
``[0, jitter)`` of the base value without consuming any rng stream, so
retry schedules are bit-reproducible across runs and across
checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultError

__all__ = ["RetryPolicy"]

_MASK64 = (1 << 64) - 1


def _unit_hash(a, b):
    """Deterministic uniform-ish value in [0, 1) from two integers
    (splitmix64-style mixing; stable across platforms and runs)."""
    x = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the remote-fetch retry loop.

    Attributes
    ----------
    max_attempts:
        Total attempts per fetch (first try included).
    base_delay:
        Backoff before the second attempt, in simulated seconds.
    backoff:
        Multiplier applied to the delay after each failed attempt.
    jitter:
        Fractional deterministic jitter: each delay is scaled by
        ``1 + jitter * u`` with ``u`` in [0, 1) hashed from the attempt
        number and the caller's key.
    timeout:
        Simulated seconds burned by every failed attempt before the
        failure is detected (also the cost of the fail-slow fallback
        fetch after the final attempt).
    """

    max_attempts: int = 3
    base_delay: float = 2e-3
    backoff: float = 2.0
    jitter: float = 0.1
    timeout: float = 10e-3

    def __post_init__(self):
        if self.max_attempts < 1:
            raise FaultError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.timeout < 0:
            raise FaultError("base_delay and timeout must be >= 0")
        if self.backoff < 1.0:
            raise FaultError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt, key=0):
        """Backoff delay after failed attempt number ``attempt``
        (0-based), in simulated seconds."""
        base = self.base_delay * self.backoff ** attempt
        return base * (1.0 + self.jitter * _unit_hash(attempt + 1, key))

    def schedule(self, key=0):
        """The full backoff schedule: delays between consecutive
        attempts (``max_attempts - 1`` entries)."""
        return [self.delay(attempt, key)
                for attempt in range(self.max_attempts - 1)]

    def simulate(self, outcomes, key=0):
        """Walk one fetch's retry loop given an iterator of attempt
        outcomes (``True`` = that attempt fails).

        Returns ``(extra_seconds, retries, gave_up)``: the simulated
        time added on top of a healthy fetch, the number of re-requests
        issued, and whether the attempt budget was exhausted (the fetch
        then succeeded through the fail-slow fallback at one extra
        ``timeout``).
        """
        extra = 0.0
        retries = 0
        for attempt in range(self.max_attempts):
            if not next(outcomes):
                return extra, retries, False
            extra += self.timeout
            if attempt < self.max_attempts - 1:
                extra += self.delay(attempt, key)
                retries += 1
        # Budget exhausted: fail-slow fallback (replica re-request).
        extra += self.timeout
        return extra, retries, True

    def describe(self):
        """Short human-readable parameter summary."""
        return (f"retry(attempts={self.max_attempts}, "
                f"base={1e3 * self.base_delay:g}ms, x{self.backoff:g}, "
                f"timeout={1e3 * self.timeout:g}ms)")
