"""Deterministic fault plans and the injector that replays them.

The paper's cost model assumes a healthy 4-node cluster; production
clusters have stragglers, flaky links, and crashed workers.  Because our
cluster is *simulated*, faults can be injected deterministically: a
:class:`FaultPlan` is a seeded schedule of :class:`FaultEvent`\\ s on the
epoch clock, and a :class:`FaultInjector` answers the engine's questions
("is worker 2 slow this epoch?", "does this remote fetch fail?") from
seeded per-``(epoch, worker)`` rng streams.  Two runs with the same plan
produce bit-identical fault timelines, retry counts, and simulated epoch
times — and a run resumed from an epoch-boundary checkpoint replays the
exact same draws, because every stream is reseeded at epoch start from
``(plan seed, epoch, worker)`` alone.

The grammar is shared infrastructure: :meth:`FaultPlan.parse` is the
*single* schedule parser for both the training chaos benchmark
(``repro chaos``, times = integer epochs) and the serving-fleet chaos
harness (``repro fleet-chaos``, times = simulated seconds, fractional
allowed; ``worker`` then names a replica).  Each consumer validates the
clock semantics it needs — :class:`FaultInjector` rejects fractional
epochs, :class:`repro.fleet.resilience.FleetSchedule` rejects
epoch-only kinds — but the token syntax, field validation, and seeding
are defined once, here.

Event kinds
-----------
``halt``
    The training *process* dies when the given epoch begins
    (:class:`~repro.errors.FaultError`).  Models the crash that
    checkpoint/resume exists for.
``crash``
    One *worker* dies permanently at the given epoch.  The engine either
    redistributes its training vertices to survivors or drops them,
    and the all-reduce ring shrinks (see ``repro.dist.engine``).
``straggler``
    A worker's batch stage times are multiplied by ``magnitude`` for
    ``duration`` epochs (slow disk, thermal throttling, noisy
    neighbor).
``flaky``
    Each of a worker's remote fetch messages fails independently with
    probability ``magnitude`` for ``duration`` epochs; the engine's
    :class:`~repro.faults.retry.RetryPolicy` pays timeouts/backoff in
    simulated time.
``slowlink``
    Cluster network bandwidth is multiplied by ``magnitude`` (< 1) for
    ``duration`` epochs (congested or degraded link).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FaultError

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = ("halt", "crash", "straggler", "flaky", "slowlink")

#: Events that target one worker (the others are cluster-wide).
_WORKER_KINDS = ("crash", "straggler", "flaky")

#: Events active over a window of epochs (the others are instantaneous).
_WINDOW_KINDS = ("straggler", "flaky", "slowlink")


def _number(text):
    """Parse a schedule time: ``int`` when integral (epoch clocks),
    ``float`` otherwise (the fleet's seconds clock)."""
    try:
        return int(text)
    except ValueError:
        return float(text)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    epoch:
        First instant the fault affects — an integer epoch on the
        training clock, a (possibly fractional) simulated second on the
        fleet clock.
    worker:
        Target worker/replica for ``crash``/``straggler``/``flaky``;
        must be ``None`` for cluster-wide kinds.
    duration:
        How long a windowed fault stays active (``straggler``,
        ``flaky``, ``slowlink``), in the schedule's clock units.  For
        ``crash`` on the fleet clock it is the node's down time;
        the training injector (permanent crashes) ignores it.
    magnitude:
        Kind-specific intensity: stage-time multiplier (>= 1) for
        ``straggler``, per-message failure probability in [0, 1) for
        ``flaky``, bandwidth multiplier in (0, 1] for ``slowlink``.
    """

    kind: str
    epoch: int
    worker: int = None
    duration: int = 1
    magnitude: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.epoch < 0:
            raise FaultError(f"fault epoch must be >= 0, got {self.epoch}")
        if self.duration <= 0:
            raise FaultError(
                f"fault duration must be > 0, got {self.duration}")
        if self.kind in _WORKER_KINDS:
            if self.worker is None or self.worker < 0:
                raise FaultError(
                    f"{self.kind} fault needs a worker id >= 0")
        elif self.worker is not None:
            raise FaultError(f"{self.kind} fault takes no worker id")
        if self.kind == "straggler" and self.magnitude < 1.0:
            raise FaultError(
                f"straggler multiplier must be >= 1, got {self.magnitude}")
        if self.kind == "flaky" and not 0.0 <= self.magnitude < 1.0:
            raise FaultError(
                f"flaky failure probability must be in [0, 1), "
                f"got {self.magnitude}")
        if self.kind == "slowlink" and not 0.0 < self.magnitude <= 1.0:
            raise FaultError(
                f"slowlink bandwidth multiplier must be in (0, 1], "
                f"got {self.magnitude}")

    def active(self, epoch):
        """Whether this (windowed) event covers ``epoch``."""
        if self.kind in _WINDOW_KINDS:
            return self.epoch <= epoch < self.epoch + self.duration
        return self.epoch == epoch

    def describe(self):
        """Compact spec-string form (inverse of :meth:`FaultPlan.parse`)."""
        token = f"{self.kind}@{self.epoch:g}"
        if self.duration != 1 and (self.kind in _WINDOW_KINDS
                                   or self.kind == "crash"):
            token += f"+{self.duration:g}"
        if self.worker is not None:
            token += f":w{self.worker}"
        if self.kind == "straggler":
            token += f":x{self.magnitude:g}"
        elif self.kind == "flaky":
            token += f":p{self.magnitude:g}"
        elif self.kind == "slowlink":
            token += f":x{self.magnitude:g}"
        return token


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of faults.

    ``seed`` drives every probabilistic draw the injector makes (flaky
    fetch outcomes); the events themselves are fully explicit, so the
    timeline of *scheduled* faults needs no randomness at all.
    """

    events: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultError(
                    f"fault plan entries must be FaultEvent, "
                    f"got {type(event).__name__}")

    @classmethod
    def parse(cls, spec, seed=0):
        """Build a plan from a compact comma-separated spec string.

        Grammar (one token per event)::

            halt@T                      process crash at time T
            crash@T[+D]:wW              worker/replica W dies at T
                                        (down D on the fleet clock)
            straggler@T[+D]:wW:xM       worker W is M-times slower
            flaky@T[+D]:wW:pP           worker W's fetches fail w.p. P
            slowlink@T[+D]:xM           network bandwidth scaled by M

        Times are integer epochs on the training clock or simulated
        seconds (fractions allowed) on the fleet clock — the same
        grammar serves ``repro chaos`` and ``repro fleet-chaos``.
        Example: ``"straggler@1+3:w0:x4,crash@2:w1,slowlink@3:x0.5"``.
        """
        events = []
        for token in str(spec).split(","):
            token = token.strip()
            if not token:
                continue
            head, _, rest = token.partition(":")
            kind, _, when = head.partition("@")
            if not when:
                raise FaultError(
                    f"bad fault token {token!r}: expected kind@epoch[...]")
            epoch_text, _, duration_text = when.partition("+")
            try:
                epoch = _number(epoch_text)
                duration = _number(duration_text) if duration_text else 1
            except ValueError:
                raise FaultError(
                    f"bad fault token {token!r}: time/duration must be "
                    f"numbers") from None
            worker = None
            magnitude = 1.0
            for part in (p for p in rest.split(":") if p):
                if part.startswith("w"):
                    worker = int(part[1:])
                elif part.startswith(("x", "p")):
                    magnitude = float(part[1:])
                else:
                    raise FaultError(
                        f"bad fault token {token!r}: unknown field "
                        f"{part!r} (expected wN, xM, or pP)")
            events.append(FaultEvent(kind=kind, epoch=epoch, worker=worker,
                                     duration=duration,
                                     magnitude=magnitude))
        return cls(events=tuple(events), seed=seed)

    def describe(self):
        """The plan as a spec string plus its seed."""
        body = ",".join(e.describe() for e in self.events) or "(healthy)"
        return f"{body} [seed={self.seed}]"

    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)


class FaultInjector:
    """Replays a :class:`FaultPlan` against the simulated epoch clock.

    The engine calls :meth:`begin_epoch` once per epoch, then queries
    multipliers / crash sets / fetch outcomes.  All randomness lives in
    per-``(seed, epoch, worker)`` streams created at ``begin_epoch``, so
    the answer sequence is a pure function of the plan and the epoch —
    replayable across crash/resume and across runs.
    """

    def __init__(self, plan):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if not isinstance(plan, FaultPlan):
            raise FaultError(
                f"FaultInjector needs a FaultPlan or spec string, "
                f"got {type(plan).__name__}")
        for event in plan:
            # The shared grammar also serves the fleet's seconds clock;
            # the training injector runs on integer epochs only.
            if (event.epoch != int(event.epoch)
                    or event.duration != int(event.duration)):
                raise FaultError(
                    f"fault {event.describe()!r} uses fractional times; "
                    f"the training injector runs on the integer epoch "
                    f"clock (fractional seconds belong to the fleet "
                    f"schedule)")
        self.plan = plan
        self.epoch = None
        self._fetch_rngs = {}
        self._disarmed_halts = set()
        # Counters over the injector's lifetime (reported by benchmarks).
        self.halts_fired = 0

    # ------------------------------------------------------------------
    # Epoch clock
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch):
        """Advance to ``epoch``; raises :class:`FaultError` for a
        scheduled ``halt`` (the injected process crash)."""
        self.epoch = int(epoch)
        self._fetch_rngs = {}
        for event in self.plan:
            if (event.kind == "halt" and event.epoch == self.epoch
                    and event.epoch not in self._disarmed_halts):
                self.halts_fired += 1
                raise FaultError(
                    f"injected process halt at epoch {self.epoch} "
                    f"(fault plan: {event.describe()})")

    def disarm_halts_through(self, epoch):
        """Disarm ``halt`` events at or before ``epoch``.

        A halt models the process dying *once*; after the trainer
        resumes from a checkpoint taken before the halt epoch, the
        crash already happened and must not re-fire on replay."""
        for event in self.plan:
            if event.kind == "halt" and event.epoch <= epoch:
                self._disarmed_halts.add(event.epoch)

    def disarm_for_resume(self, start_epoch):
        """Disarm the halts a resumed run has already survived.

        A resume implies the previous incarnation died at the first
        still-armed halt it reached — and because a checkpoint always
        precedes its halt epoch, that is the first halt at or after
        ``start_epoch``.  Every halt before ``start_epoch`` fired in an
        even earlier incarnation (epochs advance in order), so: disarm
        all halts up to ``start_epoch`` plus the first one after it.
        Later halts stay armed — each models its own one-time crash,
        needing its own resume."""
        for epoch in sorted(e.epoch for e in self.plan
                            if e.kind == "halt"):
            self._disarmed_halts.add(epoch)
            if epoch >= start_epoch:
                break

    def _require_epoch(self):
        if self.epoch is None:
            raise FaultError("FaultInjector used before begin_epoch()")

    # ------------------------------------------------------------------
    # Scheduled-fault queries
    # ------------------------------------------------------------------
    def crashed_workers(self, epoch=None):
        """Workers whose permanent crash happened at or before ``epoch``
        (default: the current epoch)."""
        epoch = self.epoch if epoch is None else epoch
        return frozenset(e.worker for e in self.plan
                         if e.kind == "crash" and e.epoch <= epoch)

    def stage_multiplier(self, worker):
        """Combined straggler slowdown of ``worker`` this epoch."""
        self._require_epoch()
        multiplier = 1.0
        for event in self.plan:
            if (event.kind == "straggler" and event.worker == worker
                    and event.active(self.epoch)):
                multiplier *= event.magnitude
        return multiplier

    def bandwidth_multiplier(self):
        """Combined network-bandwidth degradation this epoch."""
        self._require_epoch()
        multiplier = 1.0
        for event in self.plan:
            if event.kind == "slowlink" and event.active(self.epoch):
                multiplier *= event.magnitude
        return multiplier

    def fetch_failure_prob(self, worker):
        """Probability that one of ``worker``'s remote fetch messages
        fails this epoch (independent flaky events compose)."""
        self._require_epoch()
        success = 1.0
        for event in self.plan:
            if (event.kind == "flaky" and event.worker == worker
                    and event.active(self.epoch)):
                success *= 1.0 - event.magnitude
        return 1.0 - success

    def fetch_attempt_fails(self, worker):
        """Draw one fetch-attempt outcome for ``worker`` this epoch.

        Draws come from a stream seeded by ``(plan seed, epoch,
        worker)``, so the outcome sequence depends only on how many
        draws this worker made this epoch — deterministic across runs
        and across checkpoint resume.
        """
        probability = self.fetch_failure_prob(worker)
        if probability <= 0.0:
            return False
        rng = self._fetch_rngs.get(worker)
        if rng is None:
            seq = np.random.SeedSequence(
                [self.plan.seed, self.epoch, int(worker)])
            rng = self._fetch_rngs[worker] = np.random.default_rng(seq)
        return bool(rng.random() < probability)
