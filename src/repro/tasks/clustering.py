"""Graph clustering — the paper's third cited downstream task.

GNN embeddings feed "graph clustering" (§1).  This module closes that
loop end to end: train embeddings (either supervised through the usual
trainer, or with the link-prediction objective for the unsupervised
path), k-means them in embedding space, and score the clusters against
the planted communities with normalized mutual information (NMI).

Both k-means and NMI are implemented here in plain numpy — no sklearn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError

__all__ = ["kmeans", "normalized_mutual_information", "cluster_embeddings",
           "ClusteringResult", "cluster_dataset"]


def kmeans(points, num_clusters, rng, max_iterations=50, tolerance=1e-4):
    """Lloyd's k-means with k-means++ seeding.

    Returns ``(labels, centroids, inertia)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if num_clusters < 1 or num_clusters > n:
        raise TrainingError(
            f"num_clusters must be in [1, {n}], got {num_clusters}")

    # k-means++ seeding: spread initial centroids by squared distance.
    centroids = np.empty((num_clusters, points.shape[1]))
    centroids[0] = points[rng.integers(n)]
    closest_sq = np.full(n, np.inf)
    for k in range(1, num_clusters):
        distance_sq = ((points - centroids[k - 1]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
        total = closest_sq.sum()
        if total == 0:
            centroids[k] = points[rng.integers(n)]
            continue
        centroids[k] = points[rng.choice(n, p=closest_sq / total)]

    labels = np.zeros(n, dtype=np.int64)
    for _iteration in range(max_iterations):
        # Assign: nearest centroid by squared Euclidean distance.
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2
                     ).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        # Update: mean of members; empty clusters respawn at the
        # farthest point.
        moved = 0.0
        for k in range(num_clusters):
            members = points[new_labels == k]
            if len(members) == 0:
                farthest = distances.min(axis=1).argmax()
                new_centroid = points[farthest]
            else:
                new_centroid = members.mean(axis=0)
            moved = max(moved, float(np.abs(
                new_centroid - centroids[k]).max()))
            centroids[k] = new_centroid
        labels = new_labels
        if moved < tolerance:
            break
    inertia = float(((points - centroids[labels]) ** 2).sum())
    return labels, centroids, inertia


def normalized_mutual_information(labels_a, labels_b):
    """NMI between two labelings (arithmetic-mean normalization);
    1.0 = identical partitions up to renaming, ~0 = independent."""
    labels_a = np.asarray(labels_a, dtype=np.int64)
    labels_b = np.asarray(labels_b, dtype=np.int64)
    if len(labels_a) != len(labels_b) or len(labels_a) == 0:
        raise TrainingError("labelings must be non-empty and aligned")
    n = len(labels_a)

    def entropy(labels):
        counts = np.bincount(labels)
        probs = counts[counts > 0] / n
        return float(-(probs * np.log(probs)).sum())

    ids_a = np.unique(labels_a)
    ids_b = np.unique(labels_b)
    contingency = np.zeros((len(ids_a), len(ids_b)))
    index_a = np.searchsorted(ids_a, labels_a)
    index_b = np.searchsorted(ids_b, labels_b)
    # Label-pair contingency histogram for mutual information — a
    # clustering statistic, not a graph aggregation; no kernel seam.
    np.add.at(contingency, (index_a, index_b), 1.0)  # repro: noqa[ARC002]
    joint = contingency / n
    outer = joint.sum(axis=1, keepdims=True) @ joint.sum(
        axis=0, keepdims=True)
    mask = joint > 0
    mutual = float((joint[mask] * np.log(joint[mask]
                                         / outer[mask])).sum())
    h_a, h_b = entropy(index_a), entropy(index_b)
    denominator = 0.5 * (h_a + h_b)
    if denominator == 0:
        return 1.0 if h_a == h_b else 0.0
    return mutual / denominator


def cluster_embeddings(embeddings, num_clusters, rng, restarts=3):
    """k-means with restarts; returns the labels of the lowest-inertia
    run."""
    best = None
    for _restart in range(restarts):
        labels, _centroids, inertia = kmeans(embeddings, num_clusters,
                                             rng)
        if best is None or inertia < best[1]:
            best = (labels, inertia)
    return best[0]


@dataclass
class ClusteringResult:
    """Outcome of clustering a dataset's embeddings."""

    labels: np.ndarray
    nmi_vs_communities: float
    nmi_vs_classes: float


def cluster_dataset(dataset, model, sampler, num_clusters=None, rng=None,
                    batch_size=1024):
    """Embed every vertex with ``model`` and k-means the embeddings.

    Scores the clustering against the planted communities (if the
    dataset has them) and against the label classes.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    num_clusters = num_clusters or dataset.num_classes
    vertices = np.arange(dataset.num_vertices)
    embeddings = np.zeros((dataset.num_vertices, 0))
    chunks = []
    model.eval()
    for start in range(0, len(vertices), batch_size):
        batch = vertices[start:start + batch_size]
        subgraph = sampler.sample(dataset.graph, batch, rng)
        h = model.embed(subgraph,
                        dataset.features[subgraph.input_nodes])
        chunks.append((subgraph.seeds, h.data))
    model.train()
    width = chunks[0][1].shape[1]
    embeddings = np.zeros((dataset.num_vertices, width))
    for seeds, values in chunks:
        embeddings[seeds] = values

    labels = cluster_embeddings(embeddings, num_clusters, rng)
    nmi_communities = (normalized_mutual_information(
        labels, dataset.communities)
        if dataset.communities is not None else 0.0)
    nmi_classes = normalized_mutual_information(labels, dataset.labels)
    return ClusteringResult(labels=labels,
                            nmi_vs_communities=nmi_communities,
                            nmi_vs_classes=nmi_classes)
