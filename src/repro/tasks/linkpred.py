"""Link prediction — the paper's second cited downstream task.

GNN embeddings feed "various downstream graph-related tasks (i.e.,
vertex classification, link prediction, and graph clustering)" (§1).
This module implements sample-based link prediction training end to
end:

1. the graph's (undirected) edges are split into train/val/test
   *positive* pairs, and the message-passing graph is rebuilt from the
   training edges only (no test leakage);
2. each step takes a batch of positive pairs plus equally many sampled
   *negative* pairs, computes endpoint embeddings with the usual
   sampled-subgraph pipeline, scores pairs by the embedding dot
   product, and minimizes binary cross-entropy;
3. quality is ROC-AUC on held-out positives vs fresh negatives.

Because the batch-preparation machinery is the same as for vertex
classification, every data-management technique (partitioners, caches,
transfer methods) composes with this task unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TrainingError
from ..graph.build import from_edges
from ..nn import (Adam, Tensor, binary_cross_entropy_with_logits,
                  build_model, roc_auc)

__all__ = ["EdgeSplit", "split_edges", "sample_negative_edges",
           "LinkPredictionResult", "train_link_prediction",
           "score_pairs"]


@dataclass
class EdgeSplit:
    """Positive-edge split plus the leakage-free training graph."""

    train_graph: object            # CSRGraph built from train edges
    train_edges: np.ndarray        # (n_train, 2)
    val_edges: np.ndarray
    test_edges: np.ndarray


def _unique_undirected_edges(graph):
    src, dst = graph.edges()
    keep = src < dst
    return np.stack([src[keep], dst[keep]], axis=1)


def split_edges(graph, rng, val_fraction=0.05, test_fraction=0.1):
    """Split undirected edges into train/val/test positive pairs.

    The returned ``train_graph`` contains only training edges (both
    directions), so sampling during training never sees evaluation
    pairs.
    """
    if val_fraction < 0 or test_fraction < 0 \
            or val_fraction + test_fraction >= 1:
        raise TrainingError("invalid edge split fractions")
    pairs = _unique_undirected_edges(graph)
    if len(pairs) == 0:
        raise TrainingError("graph has no edges to split")
    order = rng.permutation(len(pairs))
    num_val = int(len(pairs) * val_fraction)
    num_test = int(len(pairs) * test_fraction)
    val_edges = pairs[order[:num_val]]
    test_edges = pairs[order[num_val:num_val + num_test]]
    train_edges = pairs[order[num_val + num_test:]]
    train_graph = from_edges(train_edges[:, 0], train_edges[:, 1],
                             graph.num_vertices, symmetrize_edges=True)
    return EdgeSplit(train_graph=train_graph, train_edges=train_edges,
                     val_edges=val_edges, test_edges=test_edges)


def sample_negative_edges(graph, count, rng, max_tries=20):
    """Uniformly sample ``count`` vertex pairs that are not edges."""
    n = graph.num_vertices
    if n < 2:
        raise TrainingError("need at least two vertices")
    negatives = []
    needed = count
    for _attempt in range(max_tries):
        if needed <= 0:
            break
        u = rng.integers(0, n, size=2 * needed)
        v = rng.integers(0, n, size=2 * needed)
        ok = u != v
        u, v = u[ok], v[ok]
        real = np.fromiter((graph.has_edge(a, b) for a, b in zip(u, v)),
                           dtype=bool, count=len(u))
        fresh = np.stack([u[~real], v[~real]], axis=1)[:needed]
        if len(fresh):
            negatives.append(fresh)
            needed -= len(fresh)
    if needed > 0:
        raise TrainingError("could not sample enough negative edges "
                            "(graph too dense?)")
    return np.concatenate(negatives)[:count]


def score_pairs(embeddings, seed_index_of, pairs):
    """Dot-product scores of embedding pairs as a 1-D Tensor.

    ``seed_index_of`` maps global vertex id -> row in ``embeddings``.
    """
    left = embeddings.gather_rows(seed_index_of[pairs[:, 0]])
    right = embeddings.gather_rows(seed_index_of[pairs[:, 1]])
    width = embeddings.data.shape[1]
    ones = Tensor(np.ones((width, 1), dtype=np.float32))
    return ((left * right) @ ones).reshape(-1)


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction training run."""

    val_auc_curve: list = field(default_factory=list)
    test_auc: float = 0.0
    losses: list = field(default_factory=list)

    @property
    def best_val_auc(self):
        """Highest validation AUC reached."""
        return max(self.val_auc_curve) if self.val_auc_curve else 0.0


def _evaluate_auc(model, dataset, split, sampler, positives, rng):
    negatives = sample_negative_edges(split.train_graph, len(positives),
                                      rng)
    pairs = np.concatenate([positives, negatives])
    labels = np.concatenate([np.ones(len(positives)),
                             np.zeros(len(negatives))])
    seeds = np.unique(pairs)
    subgraph = sampler.sample(split.train_graph, seeds, rng)
    seed_index_of = np.full(dataset.num_vertices, -1, dtype=np.int64)
    seed_index_of[subgraph.seeds] = np.arange(len(subgraph.seeds))
    model.eval()
    embeddings = model.embed(subgraph,
                             dataset.features[subgraph.input_nodes])
    model.train()
    scores = score_pairs(embeddings, seed_index_of, pairs)
    return roc_auc(scores.data, labels)


def train_link_prediction(dataset, sampler, epochs=10, batch_edges=512,
                          hidden_dim=64, learning_rate=0.003,
                          model_name="gcn", seed=0):
    """Train a GNN link predictor on ``dataset``; returns a
    :class:`LinkPredictionResult`.

    Parameters
    ----------
    dataset:
        Any :class:`~repro.graph.datasets.Dataset` (labels unused).
    sampler:
        Batch-preparation sampler (applied to pair endpoints).
    batch_edges:
        Positive pairs per step (matched 1:1 with negatives).
    """
    rng = np.random.default_rng(seed)
    split = split_edges(dataset.graph, rng)
    model = build_model(model_name, dataset.feature_dim,
                        num_classes=hidden_dim, hidden_dim=hidden_dim,
                        rng=np.random.default_rng(seed + 1))
    optimizer = Adam(model.parameters(), lr=learning_rate)
    seed_index_of = np.full(dataset.num_vertices, -1, dtype=np.int64)

    result = LinkPredictionResult()
    for _epoch in range(epochs):
        order = rng.permutation(len(split.train_edges))
        epoch_losses = []
        for start in range(0, len(order), batch_edges):
            positives = split.train_edges[order[start:start + batch_edges]]
            negatives = sample_negative_edges(split.train_graph,
                                              len(positives), rng)
            pairs = np.concatenate([positives, negatives])
            labels = np.concatenate([np.ones(len(positives)),
                                     np.zeros(len(negatives))])
            seeds = np.unique(pairs)
            subgraph = sampler.sample(split.train_graph, seeds, rng)
            seed_index_of[:] = -1
            seed_index_of[subgraph.seeds] = np.arange(len(subgraph.seeds))
            embeddings = model.embed(
                subgraph, dataset.features[subgraph.input_nodes])
            scores = score_pairs(embeddings, seed_index_of, pairs)
            loss = binary_cross_entropy_with_logits(scores, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        result.losses.append(float(np.mean(epoch_losses)))
        result.val_auc_curve.append(_evaluate_auc(
            model, dataset, split, sampler, split.val_edges,
            np.random.default_rng(seed + 99)))
    result.test_auc = _evaluate_auc(
        model, dataset, split, sampler, split.test_edges,
        np.random.default_rng(seed + 100))
    return result
