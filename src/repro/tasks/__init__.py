"""Downstream tasks consuming GNN embeddings (beyond vertex
classification)."""

from .clustering import (ClusteringResult, cluster_dataset,
                         cluster_embeddings, kmeans,
                         normalized_mutual_information)
from .linkpred import (EdgeSplit, LinkPredictionResult,
                       sample_negative_edges, score_pairs, split_edges,
                       train_link_prediction)

__all__ = ["EdgeSplit", "split_edges", "sample_negative_edges",
           "score_pairs", "LinkPredictionResult",
           "train_link_prediction",
           "kmeans", "normalized_mutual_information",
           "cluster_embeddings", "ClusteringResult", "cluster_dataset"]
