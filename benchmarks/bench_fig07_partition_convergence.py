"""Figure 7: accuracy and convergence speed of partitioning methods.

Trains the same GCN to the same epoch budget under each partitioning and
prints accuracy-vs-simulated-time series.  Paper findings: all methods
reach (essentially) the same accuracy; hash converges slowest in wall
time because its epochs are the most communication-heavy.
"""

from repro import Trainer
from repro.core import format_series, format_table

from common import PARTITIONERS, bench_dataset, quick_config, run_once

DATASET = "ogb-products"
EPOCHS = 25


def build_results():
    dataset = bench_dataset(DATASET)
    results = {}
    for name in PARTITIONERS:
        config = quick_config(partitioner=name, epochs=EPOCHS,
                              batch_size=128, fanout=(10, 10))
        results[name] = Trainer(dataset, config).run()
    return results


def test_fig07_partition_convergence(benchmark):
    results = run_once(benchmark, build_results)
    print()
    rows = []
    for name, result in results.items():
        curve = result.curve
        rows.append({
            "method": name,
            "best val acc": round(curve.best_accuracy, 3),
            "time to 95% best (sim s)": curve.convergence_time(0.95),
            "mean epoch (sim s)": round(curve.mean_epoch_seconds, 5),
        })
        print(format_series(curve.series()[:8], label=f"{name} (first 8)",
                            x_name="sim_s", y_name="val_acc"))
    print(format_table(rows, title=f"Figure 7: convergence ({DATASET})"))

    best = {r["method"]: r["best val acc"] for r in rows}
    # Partitioning does not change reachable accuracy (Table 4 premise).
    assert max(best.values()) - min(best.values()) < 0.05
    # Hash's communication-heavy epochs make it the slowest to converge
    # among communication-bound methods (stream-v avoids comm entirely).
    t95 = {r["method"]: r["time to 95% best (sim s)"] for r in rows}
    reached = {m: t for m, t in t95.items() if t is not None}
    assert "hash" in reached
    assert reached["hash"] >= max(
        reached.get(m, 0.0) for m in ("metis-v", "metis-ve", "metis-vet"))


if __name__ == "__main__":
    for name, result in build_results().items():
        print(name, round(result.best_val_accuracy, 3),
              result.curve.convergence_time(0.95))
