"""Ablation: static vs dynamic GPU cache policies.

§7.3.3 compares two *static* policies (degree, pre-sampling); the
systems of Table 1 also ship *dynamic* caches (BGL).  This ablation
adds the LRU cache to the comparison under two access regimes:

* **stationary** — the training workload the static policies were
  built for; pre-sampling should win or tie (it measured exactly this
  distribution);
* **drifting** — the hot seed set changes mid-run (e.g. curriculum or
  re-shuffled priorities); static caches go stale, LRU adapts.
"""

import numpy as np

from repro.core import format_table
from repro.sampling import NeighborSampler
from repro.transfer import DegreeCache, LRUCache, PreSampleCache

from common import bench_dataset, run_once

DATASET = "ogb-papers"   # flat degrees: community locality drives access
RATIO = 0.2
ROUNDS = 12
HOT_SIZE = 80


def hit_rate_under(cache, dataset, sampler, seed_sets):
    rng = np.random.default_rng(5)
    cache.reset_stats()
    for round_index in range(ROUNDS):
        seeds = seed_sets[round_index * len(seed_sets) // ROUNDS]
        batch = rng.permutation(seeds)[:300]
        subgraph = sampler.sample(dataset.graph, batch, rng)
        cache.lookup(subgraph.input_nodes)
    return cache.hit_rate


def build_rows():
    dataset = bench_dataset(DATASET)
    sampler = NeighborSampler((6, 3))
    # Two community-disjoint hot seed sets: the drift swaps the working
    # set halfway through the run.
    communities = dataset.communities
    half = communities.max() // 2
    train = dataset.train_ids
    rng = np.random.default_rng(0)
    hot_a = rng.choice(train[communities[train] <= half], HOT_SIZE,
                       replace=False)
    hot_b = rng.choice(train[communities[train] > half], HOT_SIZE,
                       replace=False)
    regimes = {
        "stationary": [hot_a],
        "drifting": [hot_a, hot_b],
    }
    rows = []
    for regime, seed_sets in regimes.items():
        caches = {
            "degree": DegreeCache(dataset.graph, RATIO),
            "presample": PreSampleCache(
                dataset.graph, sampler, seed_sets[0], RATIO,
                rng=np.random.default_rng(1)),
            "lru": LRUCache(dataset.graph, RATIO),
        }
        row = {"regime": regime}
        for name, cache in caches.items():
            row[name] = round(hit_rate_under(cache, dataset, sampler,
                                             seed_sets), 3)
        rows.append(row)
    return rows


def test_ablation_cache_dynamics(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Ablation: cache dynamics "
                                   f"({DATASET}, ratio {RATIO})"))
    stationary = next(r for r in rows if r["regime"] == "stationary")
    drifting = next(r for r in rows if r["regime"] == "drifting")
    # Stationary: the measured-distribution policy wins (it profiled
    # exactly this workload).
    assert stationary["presample"] > stationary["degree"]
    assert stationary["presample"] > stationary["lru"]
    # Drift punishes the pre-sampled snapshot hard...
    assert drifting["presample"] < stationary["presample"] - 0.05
    # ... while the adaptive cache holds up (matches or beats the stale
    # static policies under drift).
    assert drifting["lru"] >= drifting["presample"] - 0.02
    assert drifting["lru"] >= drifting["degree"] - 0.02


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: cache dynamics"))
