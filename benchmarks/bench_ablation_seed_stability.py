"""Ablation: seed stability of the headline partitioning comparison.

Small-graph experiments are noisy; this ablation re-runs the
hash-vs-metis comparison under three seeds (via ``repro.core.repeat``)
and checks the paper-shape claims on the *means*: equal accuracy,
longer hash epochs.  It doubles as the reference usage of the
multi-seed aggregation API.
"""

from repro.core import format_table, repeat

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-products"
EPOCHS = 12
SEEDS = (0, 1, 2)


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    aggregates = {}
    for method in ("hash", "metis-ve"):
        config = quick_config(partitioner=method, epochs=EPOCHS,
                              batch_size=128, fanout=(10, 10))
        aggregate = repeat(dataset, config, seeds=SEEDS)
        aggregates[method] = aggregate
        acc_mean, acc_std = aggregate.best_val_accuracy
        time_mean, time_std = aggregate.mean_epoch_seconds
        rows.append({
            "method": method,
            "runs": len(aggregate.results),
            "best val acc": f"{acc_mean:.3f} ± {acc_std:.3f}",
            "epoch (sim ms)": f"{1e3 * time_mean:.3f} ± "
                              f"{1e3 * time_std:.3f}",
        })
    return rows, aggregates


def test_ablation_seed_stability(benchmark):
    rows, aggregates = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Ablation: seed stability "
                                   f"({DATASET}, {len(SEEDS)} seeds)"))
    hash_acc, hash_std = aggregates["hash"].best_val_accuracy
    metis_acc, metis_std = aggregates["metis-ve"].best_val_accuracy
    # Mean accuracies agree within the combined spread + margin
    # (Table 4's claim, now seed-averaged).
    assert abs(hash_acc - metis_acc) < hash_std + metis_std + 0.03
    # Mean epoch time: hash pays for its communication on every seed
    # average.
    hash_time, _ = aggregates["hash"].mean_epoch_seconds
    metis_time, _ = aggregates["metis-ve"].mean_epoch_seconds
    assert hash_time > metis_time


if __name__ == "__main__":
    print(format_table(build_rows()[0], title="Ablation: seeds"))
