"""Ablation: full-batch vs mini-batch training, and Sancus-style
staleness.

Backs two of the paper's framing claims with measurements:

* §6.2 — "the model parameters are updated only once within an epoch
  [in full-batch training], which results in slower model convergence":
  mini-batch reaches the accuracy target in less simulated time.
* Table 1's Sancus row — staleness-aware communication avoidance cuts
  full-batch epoch time by skipping boundary-embedding broadcasts, at a
  bounded accuracy cost (measured, since the stale math runs for real).
"""

import numpy as np

from repro import Trainer
from repro.core import format_table
from repro.dist import FullBatchEngine, FullGraphGCN
from repro.nn import Adam
from repro.partition import MetisPartitioner
from repro.transfer import DEFAULT_SPEC

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-arxiv"
EPOCHS = 30
TARGET = 0.80


def run_fullbatch(dataset, partition, staleness):
    model = FullGraphGCN(dataset.feature_dim, 128, dataset.num_classes,
                         2, np.random.default_rng(1))
    # Same learning rate as the mini-batch arm for a fair comparison.
    engine = FullBatchEngine(dataset, partition, model,
                             Adam(model.parameters(), lr=0.003),
                             spec=DEFAULT_SPEC, staleness=staleness)
    elapsed = 0.0
    best = 0.0
    reach = None
    reach_epoch = None
    for epoch in range(EPOCHS):
        stats = engine.run_epoch()
        elapsed += stats.epoch_seconds
        accuracy = engine.evaluate(dataset.val_ids)
        best = max(best, accuracy)
        if reach is None and accuracy >= TARGET:
            reach = elapsed
            reach_epoch = epoch
    return {"best val acc": round(best, 3),
            f"time to {TARGET} (sim s)": reach,
            f"epochs to {TARGET}": reach_epoch,
            "mean epoch (sim s)": round(elapsed / EPOCHS, 5)}


def build_rows():
    dataset = bench_dataset(DATASET)
    partition = MetisPartitioner("ve").partition(
        dataset.graph, 4, split=dataset.split,
        rng=np.random.default_rng(0))

    rows = []
    mini = Trainer(dataset, quick_config(
        epochs=EPOCHS, batch_size=128, fanout=(10, 10),
        partitioner="metis-ve")).run()
    mini_time = mini.curve.time_to_accuracy(TARGET)
    mini_epoch = None
    if mini_time is not None:
        cumulative = mini.curve.cumulative_seconds
        mini_epoch = int(np.searchsorted(cumulative, mini_time))
    rows.append({"mode": "mini-batch (fanout 10,10 / bs 128)",
                 "best val acc": round(mini.best_val_accuracy, 3),
                 f"time to {TARGET} (sim s)": mini_time,
                 f"epochs to {TARGET}": mini_epoch,
                 "mean epoch (sim s)":
                     round(mini.curve.mean_epoch_seconds, 5)})
    for staleness in (0, 1, 3):
        row = {"mode": f"full-batch (staleness={staleness})"}
        row.update(run_fullbatch(dataset, partition, staleness))
        rows.append(row)
    return rows


def test_ablation_fullbatch_vs_minibatch(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows,
                       title=f"Ablation: training mode ({DATASET})"))
    epoch_key = f"epochs to {TARGET}"
    mini = rows[0]
    fresh = next(r for r in rows if r["mode"].endswith("staleness=0)"))
    stale = next(r for r in rows if r["mode"].endswith("staleness=3)"))
    # §6.2: full-batch updates once per epoch, so it needs more epochs
    # to reach the target than mini-batch (which updates ~7x per epoch).
    assert mini[epoch_key] is not None
    if fresh[epoch_key] is not None:
        assert mini[epoch_key] <= fresh[epoch_key]
    # Sancus: staleness shortens epochs, accuracy stays in range.
    assert stale["mean epoch (sim s)"] < fresh["mean epoch (sim s)"]
    assert stale["best val acc"] > fresh["best val acc"] - 0.1


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: full-batch"))
