"""Shared configuration for the benchmark suite.

Every benchmark reproduces one table or figure of the paper: it runs the
real code path, prints the same rows/series the paper reports, and wraps
the work in ``benchmark.pedantic(..., rounds=1)`` so pytest-benchmark
records its wall time.  Scales are chosen so the full suite finishes in
minutes on a laptop.

Run a single benchmark standalone for readable output::

    python benchmarks/bench_fig04_comp_load.py
"""

from __future__ import annotations

from repro import TrainingConfig
from repro.graph import load_dataset

#: Dataset scale for benchmarks (fraction of the registered stand-in
#: size, itself a scaled stand-in for the paper's datasets).
SCALE = 0.5

#: Datasets with ground-truth labels — used for partitioning and batch
#: preparation experiments, exactly as in §4.
LABELED = ("reddit", "ogb-arxiv", "ogb-products", "amazon")

#: Feature-heavy datasets used for the transfer experiments (§4).
TRANSFER = ("livejournal", "lj-large", "lj-links", "enwiki-links")

#: The six partitioning methods of Table 3.
PARTITIONERS = ("hash", "metis-v", "metis-ve", "metis-vet", "stream-v",
                "stream-b")


def bench_dataset(name, scale=SCALE):
    """Load (and cache) a benchmark dataset."""
    return load_dataset(name, scale=scale)


def quick_config(**overrides):
    """Training config tuned for benchmark wall time: modest fanout and
    epoch counts, 4 simulated machines like the paper's cluster."""
    defaults = dict(epochs=12, batch_size=256, fanout=(10, 10),
                    num_workers=4, partitioner="metis-ve",
                    transfer="zero-copy", pipeline="bp+dt", seed=0)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
