"""Table 2: dataset description.

Prints the nine-dataset suite (paper sizes + generated stand-in sizes)
and verifies the structural roles: OGB-Papers is the one non-power-law
graph, the LiveJournal family carries random features/labels.
"""

from repro.graph import dataset_table, degree_gini, is_power_law

from common import SCALE, bench_dataset, run_once
from repro.core import format_table


def build_table():
    rows = dataset_table(scale=SCALE)
    for row in rows:
        dataset = bench_dataset(row["dataset"])
        row["measured |V|"] = dataset.num_vertices
        row["measured |E|"] = dataset.num_edges
        row["degree gini"] = round(degree_gini(dataset.graph), 2)
    return rows


def test_table2_datasets(benchmark):
    rows = run_once(benchmark, build_table)
    print()
    print(format_table(rows, title="Table 2: dataset description"))
    assert len(rows) == 9
    by_name = {r["dataset"]: r for r in rows}
    # Feature dims and class counts straight from the paper's Table 2.
    assert by_name["reddit"]["#F"] == 602
    assert by_name["ogb-papers"]["#L"] == 172
    # Structural roles.
    flat = bench_dataset("ogb-papers")
    skewed = bench_dataset("amazon")
    assert not is_power_law(flat.graph)
    assert is_power_law(skewed.graph)


if __name__ == "__main__":
    print(format_table(build_table(), title="Table 2"))
