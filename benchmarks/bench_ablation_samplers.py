"""Ablation: the five sampler families end-to-end.

§6.2 classifies sampling algorithms into vertex-wise, layer-wise, and
subgraph-wise families (and notes its parameter conclusions apply across
them).  This ablation trains the same model under one representative of
each family plus the rate and hybrid variants, reporting accuracy,
per-epoch cost, and the per-batch footprint — the cost/quality Pareto
the families trade along.
"""

from repro import Trainer
from repro.core import format_table
from repro.sampling import (HybridSampler, LayerWiseSampler,
                            NeighborSampler, RateSampler, SubgraphSampler)

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-arxiv"
EPOCHS = 15

SAMPLERS = {
    "vertex-wise fanout(8,8)": NeighborSampler((8, 8)),
    "rate(0.3)": RateSampler(0.3, num_layers=2),
    "hybrid": HybridSampler(fanout=(8, 8), rate=0.3, degree_threshold=16),
    "layer-wise (budget 256)": LayerWiseSampler(256, num_layers=2),
    "subgraph-wise (pad 0.5)": SubgraphSampler(num_layers=2,
                                               walk_padding=0.5),
}


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for label, sampler in SAMPLERS.items():
        config = quick_config(epochs=EPOCHS, batch_size=128,
                              num_workers=1, partitioner="hash",
                              sampler=sampler)
        result = Trainer(dataset, config).run()
        footprint = result.involved_totals()
        rows.append({
            "sampler": label,
            "best val acc": round(result.best_val_accuracy, 3),
            "mean epoch (sim ms)":
                round(1e3 * result.curve.mean_epoch_seconds, 4),
            "epoch #V": int(footprint["vertices"]),
            "epoch #E": int(footprint["edges"]),
        })
    return rows


def test_ablation_sampler_families(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows,
                       title=f"Ablation: sampler families ({DATASET})"))
    by_name = {r["sampler"]: r for r in rows}
    chance = 5 * (1 / 40)
    # Every family learns far above chance.
    assert all(r["best val acc"] > chance for r in rows)
    # Subgraph-wise is the cheapest footprint (it never leaves the
    # induced subgraph) but pays in accuracy vs vertex-wise.
    sub = by_name["subgraph-wise (pad 0.5)"]
    vw = by_name["vertex-wise fanout(8,8)"]
    assert sub["epoch #E"] < vw["epoch #E"]
    assert sub["best val acc"] <= vw["best val acc"] + 0.01
    # Layer-wise caps the footprint below unrestricted vertex-wise.
    assert by_name["layer-wise (budget 256)"]["epoch #V"] <= vw["epoch #V"]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: samplers"))
