"""Figure 6: partitioning time vs. training time.

Both sides are *measured wall-clock* here: each method partitions the
graph, then the same training recipe runs and the partitioning share of
(partitioning + training) is reported.  The paper's ordering — hash
virtually free (0.11%), Metis-extend modest (<10%), streaming dominant
(85-99%) — should be reproduced directionally: hash << metis << stream-v.
(Stream-B's block streaming is cheap at this scale; the paper's 4,600 s
figure comes from its sequential set intersections on 100M-edge graphs.)
"""

from repro import Trainer
from repro.core import format_table, make_partitioner

from common import PARTITIONERS, bench_dataset, quick_config, run_once

DATASET = "ogb-products"
EPOCHS = 10


def _partitioner(name):
    if name == "stream-v":
        # PaGraph's actual algorithm intersects *full* (uncapped) L-hop
        # neighborhoods per training vertex — the source of its
        # partitioning cost.
        return make_partitioner("stream-v", hop_cap=None)
    return make_partitioner(name)


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for name in PARTITIONERS:
        config = quick_config(partitioner=_partitioner(name),
                              epochs=EPOCHS, fanout=(10, 10))
        result = Trainer(dataset, config).run()
        share = result.partitioning_time_share()
        rows.append({
            "method": name,
            "partition (s)": round(result.partition_seconds, 4),
            f"train {EPOCHS}ep (s)": round(result.total_wall_seconds, 3),
            "partition share": f"{100 * share:.2f}%",
            "partition / epoch": round(
                result.partition_seconds
                / max(result.total_wall_seconds / EPOCHS, 1e-9), 2),
        })
    return rows


def test_fig06_partitioning_time(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(
        rows, title=f"Figure 6: partitioning vs training time ({DATASET})"))
    seconds = {r["method"]: r["partition (s)"] for r in rows}
    # Hash is orders of magnitude cheaper than everything structural.
    assert seconds["hash"] < 0.1 * seconds["metis-ve"]
    # Streaming (vertex-level, L-hop set intersections) is the slowest.
    assert seconds["stream-v"] > seconds["metis-ve"]
    assert seconds["stream-v"] > seconds["hash"] * 50


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 6"))
