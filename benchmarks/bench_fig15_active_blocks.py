"""Figure 15: distribution of active (sampled) vertices over 256 KB
feature blocks within a batch.

For one training batch, how full is each 256 KB feature block with
vertices the batch actually needs?  The paper's observation: activity is
fragmented — most blocks are partially active — and applying a GPU cache
(which strips the hottest vertices out of the transfer) fragments it
much further (the orange line in the figure).
"""

import numpy as np

from repro.core import format_table
from repro.sampling import NeighborSampler
from repro.transfer import DegreeCache, block_activity

from common import bench_dataset, run_once

DATASET = "reddit"
SCALE = 1.0
BATCH = 128
FANOUT = (10, 5)


def activity_summary(fractions, label):
    return {
        "config": label,
        "blocks": len(fractions),
        "mean active": round(float(np.mean(fractions)), 3),
        "p50": round(float(np.percentile(fractions, 50)), 3),
        "p90": round(float(np.percentile(fractions, 90)), 3),
        "fully active": int((fractions >= 0.999).sum()),
        "inactive": int((fractions == 0).sum()),
    }


def build_rows():
    dataset = bench_dataset(DATASET, scale=SCALE)
    sampler = NeighborSampler(FANOUT)
    rng = np.random.default_rng(0)
    batch = rng.permutation(dataset.train_ids)[:BATCH]
    subgraph = sampler.sample(dataset.graph, batch, rng)
    feat_bytes = dataset.feature_dim * 4

    plain = block_activity(subgraph.input_nodes, dataset.num_vertices,
                           feat_bytes)
    cache = DegreeCache(dataset.graph, 0.3)
    _hits, misses = cache.lookup(subgraph.input_nodes)
    cached = block_activity(misses, dataset.num_vertices, feat_bytes)
    return [activity_summary(plain.fractions, "no cache"),
            activity_summary(cached.fractions, "with 30% degree cache")]


def test_fig15_active_vertex_distribution(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows,
                       title=f"Figure 15: block activity ({DATASET})"))
    plain, cached = rows
    # Activity is fragmented: the typical block is partially active.
    assert 0.0 < plain["mean active"] < 1.0
    # Caching strips the hot vertices and fragments activity further.
    assert cached["mean active"] < plain["mean active"]
    assert cached["fully active"] <= plain["fully active"]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 15"))
