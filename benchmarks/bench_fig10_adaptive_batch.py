"""Figure 10: performance of adaptive batch size training.

The paper's proposed method (§6.3.1): start with a small batch (large
gradient magnitude, fast descent) and grow it as validation accuracy
plateaus.  On Reddit/Products the paper reports 1.64x/1.52x faster
convergence than the best fixed batch size, at equal accuracy.
"""

from repro.core import compare_adaptive_to_fixed, format_table

from common import bench_dataset, quick_config, run_once

DATASET = "reddit"
EPOCHS = 20


def build_rows():
    dataset = bench_dataset(DATASET)
    config = quick_config(epochs=EPOCHS, num_workers=1,
                          partitioner="hash", fanout=(10, 10))
    outcomes = compare_adaptive_to_fixed(
        dataset, config, fixed_sizes=(512, 2048), start_size=128,
        max_size=2048, target_fraction=0.97)
    rows = []
    for label, (result, seconds) in outcomes.items():
        rows.append({
            "schedule": label,
            "best val acc": round(result.best_val_accuracy, 3),
            "time to 97% best (sim s)": seconds,
            "batch sizes seen": sorted(set(result.curve.batch_sizes)),
        })
    return rows


def test_fig10_adaptive_batch_size(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows,
                       title=f"Figure 10: adaptive batch size ({DATASET})"))
    by_label = {r["schedule"]: r for r in rows}
    adaptive = by_label["adaptive"]
    # The schedule actually adapts and doesn't lose accuracy.
    assert len(adaptive["batch sizes seen"]) > 1
    fixed_best = max(by_label[k]["best val acc"] for k in by_label
                     if k.startswith("fixed"))
    assert adaptive["best val acc"] >= fixed_best - 0.02
    # And reaches its target faster than training at the final (large)
    # batch size from scratch — the paper's Figure 10 comparison.
    t_adaptive = adaptive["time to 97% best (sim s)"]
    t_large = by_label["fixed-2048"]["time to 97% best (sim s)"]
    assert t_adaptive is not None
    assert t_large is None or t_adaptive < t_large


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 10"))
