"""Ablation: how partitioning cost and quality scale with graph size.

Figure 6's absolute shares depend on scale; this ablation makes the
*trend* explicit by partitioning the same dataset family at increasing
sizes: hash stays flat-cheap, the multilevel partitioner grows roughly
linearly in edges, and Stream-V's uncapped L-hop set intersections grow
fastest — the asymptotic reason the paper measured 99% time shares on
its 10^8-edge graphs.
"""

import numpy as np

from repro.core import format_table, make_partitioner
from repro.graph import load_dataset
from repro.partition import edge_cut_fraction

from common import run_once

SCALES = (0.25, 0.5, 1.0)
METHODS = ("hash", "metis-ve", "stream-v")


def build_rows():
    rows = []
    for scale in SCALES:
        dataset = load_dataset("ogb-products", scale=scale)
        row = {"scale": scale, "|V|": dataset.num_vertices,
               "|E|": dataset.num_edges}
        for name in METHODS:
            kwargs = {"hop_cap": None} if name == "stream-v" else {}
            partitioner = make_partitioner(name, **kwargs)
            result = partitioner.partition(
                dataset.graph, 4, split=dataset.split,
                rng=np.random.default_rng(1))
            row[f"{name} (s)"] = round(result.seconds, 4)
            row[f"{name} cut"] = round(
                edge_cut_fraction(dataset.graph, result.assignment), 3)
        rows.append(row)
    return rows


def test_ablation_scaling(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Ablation: partitioning vs scale"))
    smallest, largest = rows[0], rows[-1]
    # Hash stays negligible at every scale.
    assert largest["hash (s)"] < 0.05
    # Structural methods grow with the graph.
    assert largest["metis-ve (s)"] > smallest["metis-ve (s)"]
    assert largest["stream-v (s)"] > smallest["stream-v (s)"]
    # Stream-V is the slowest structural method at the largest scale
    # (the paper's asymptotic story).
    assert largest["stream-v (s)"] > largest["metis-ve (s)"]
    # Quality holds across scales: metis cut stays well below hash.
    for row in rows:
        assert row["metis-ve cut"] < 0.8 * row["hash cut"]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: scaling"))
