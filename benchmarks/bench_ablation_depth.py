"""Ablation: GNN depth and the neighborhood explosion.

Table 5 shows systems shipping 2-layer ((25, 10)) and 3-layer
((15, 10, 5)) fanout defaults.  Depth multiplies the sampled
neighborhood — the structural reason mini-batch GNNs stay shallow.
This ablation trains 1-, 2-, and 3-layer GCNs with the corresponding
paper-style fanouts and reports the accuracy/footprint trade.
"""

from repro import Trainer
from repro.core import format_table

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-arxiv"
EPOCHS = 15
DEPTHS = {1: (10,), 2: (10, 10), 3: (10, 10, 5)}


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for depth, fanout in DEPTHS.items():
        config = quick_config(epochs=EPOCHS, batch_size=128,
                              num_workers=1, partitioner="hash",
                              num_layers=depth, fanout=fanout)
        result = Trainer(dataset, config).run()
        footprint = result.involved_totals()
        rows.append({
            "layers": depth,
            "fanout": str(fanout),
            "best val acc": round(result.best_val_accuracy, 3),
            "epoch #V": int(footprint["vertices"]),
            "epoch #E": int(footprint["edges"]),
            "epoch (sim ms)": round(
                1e3 * result.curve.mean_epoch_seconds, 4),
        })
    return rows


def test_ablation_depth(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Ablation: GNN depth ({DATASET})"))
    by_depth = {r["layers"]: r for r in rows}
    # Neighborhood explosion: every extra layer inflates the footprint.
    assert by_depth[2]["epoch #V"] > by_depth[1]["epoch #V"]
    assert by_depth[3]["epoch #V"] > by_depth[2]["epoch #V"]
    # Two hops beat one on accuracy (aggregation needs range); the
    # third hop is not guaranteed to pay for itself.
    assert by_depth[2]["best val acc"] > by_depth[1]["best val acc"]
    # Cost follows the footprint.
    assert (by_depth[3]["epoch (sim ms)"]
            > by_depth[1]["epoch (sim ms)"])


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: depth"))
