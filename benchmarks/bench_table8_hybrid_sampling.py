"""Table 8: fanout-based sampling vs the paper's fanout-rate hybrid
(Arxiv).

The hybrid sampler (§6.3.4) applies the fanout to low-degree vertices
and a sampling rate to high-degree vertices.  The paper reports accuracy
matching the best fixed fanout at 1.74x faster convergence.  At
simulation scale the same trade shows up as: hybrid accuracy beats the
equal-cost fixed fanout (8, 8) and approaches the expensive (32, 32)
at a fraction of its per-epoch cost.
"""

from repro import Trainer
from repro.core import format_table
from repro.sampling import HybridSampler, NeighborSampler

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-arxiv"
EPOCHS = 18
TARGET = 0.85

SAMPLERS = {
    "fanout(4, 4)": NeighborSampler((4, 4)),
    "fanout(8, 8)": NeighborSampler((8, 8)),
    "fanout(32, 32)": NeighborSampler((32, 32)),
    "hybrid": HybridSampler(fanout=(4, 4), rate=0.3, degree_threshold=12),
}


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for name, sampler in SAMPLERS.items():
        config = quick_config(epochs=EPOCHS, batch_size=128,
                              num_workers=1, partitioner="hash",
                              sampler=sampler)
        result = Trainer(dataset, config).run()
        rows.append({
            "sampling": name,
            "accuracy (%)": round(100 * result.best_val_accuracy, 1),
            f"time to {TARGET:.2f} (sim s)":
                result.curve.time_to_accuracy(TARGET),
            "mean epoch (sim s)":
                round(result.curve.mean_epoch_seconds, 5),
        })
    return rows


def test_table8_hybrid_sampling(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Table 8: hybrid sampling ({DATASET})"))
    by_name = {r["sampling"]: r for r in rows}
    hybrid = by_name["hybrid"]
    # Hybrid beats the equal-cost fixed fanout on accuracy...
    assert hybrid["accuracy (%)"] >= by_name["fanout(8, 8)"]["accuracy (%)"]
    # ... at a per-epoch cost well under the big fixed fanout.
    assert (hybrid["mean epoch (sim s)"]
            < by_name["fanout(32, 32)"]["mean epoch (sim s)"])
    # And converges to the target much faster than the starved fanout.
    key = f"time to {TARGET:.2f} (sim s)"
    assert hybrid[key] is not None
    assert (by_name["fanout(4, 4)"][key] is None
            or hybrid[key] < by_name["fanout(4, 4)"][key])


if __name__ == "__main__":
    print(format_table(build_rows(), title="Table 8"))
