"""Figure 16: ratio of blocks suitable for explicit transfer vs the
activity threshold.

A block is "suitable for explicit (DMA) transfer" when its active
fraction exceeds the threshold.  Paper findings (§7.3.1): the ratio
falls off quickly with the threshold; the dense Reddit stays highest;
after GPU caching almost no block qualifies (e.g. 2% at threshold 0.8
on Reddit) — which is why hybrid transfer does not help GNN training.
"""

import numpy as np

from repro.core import format_table
from repro.sampling import NeighborSampler
from repro.transfer import DegreeCache, block_activity, threshold_sweep

from common import bench_dataset, run_once

DATASETS = ("reddit", "livejournal")
SCALE = 1.0
THRESHOLDS = (0.1, 0.3, 0.5, 0.7, 0.9)
BATCH = 128


def sweep_for(dataset, cache_ratio):
    sampler = NeighborSampler((10, 5))
    rng = np.random.default_rng(0)
    batch = rng.permutation(dataset.train_ids)[:BATCH]
    subgraph = sampler.sample(dataset.graph, batch, rng)
    active = subgraph.input_nodes
    if cache_ratio:
        cache = DegreeCache(dataset.graph, cache_ratio)
        _hits, active = cache.lookup(active)
    activity = block_activity(active, dataset.num_vertices,
                              dataset.feature_dim * 4)
    return threshold_sweep(activity, THRESHOLDS)


def build_rows():
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name, scale=SCALE)
        for cache_ratio, label in ((0.0, "no cache"),
                                   (0.3, "30% cache")):
            sweep = sweep_for(dataset, cache_ratio)
            row = {"dataset": name, "config": label}
            row.update({f"t={t}": round(v, 3) for t, v in sweep.items()})
            rows.append(row)
    return rows


def test_fig16_active_block_ratio(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Figure 16: active-block ratio vs "
                                   "threshold"))
    for row in rows:
        values = [row[f"t={t}"] for t in THRESHOLDS]
        # Monotone decrease with the threshold.
        assert all(a >= b for a, b in zip(values, values[1:]))
    by_key = {(r["dataset"], r["config"]): r for r in rows}
    # Reddit (denser sampling) keeps more explicit-suitable blocks than
    # the sparser LiveJournal at the mid threshold.
    assert (by_key[("reddit", "no cache")]["t=0.5"]
            >= by_key[("livejournal", "no cache")]["t=0.5"])
    # Caching collapses explicit suitability (the paper's 2% at 0.8).
    for name in DATASETS:
        assert (by_key[(name, "30% cache")]["t=0.7"]
                <= by_key[(name, "no cache")]["t=0.7"])
        assert by_key[(name, "30% cache")]["t=0.9"] < 0.2


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 16"))
