"""Figure 8: epoch time under different partition methods.

Simulated per-epoch time of the same training recipe under each
partitioning.  Paper findings: hash (and the streaming methods on
power-law graphs) have the longest epochs; the Metis-extend variants sit
close together below them; Stream-V's replication buys the shortest
epochs.
"""

from repro import Trainer
from repro.core import format_table

from common import PARTITIONERS, bench_dataset, quick_config, run_once

DATASETS = ("ogb-products", "reddit")
EPOCHS = 6


def build_rows():
    rows = []
    for dataset_name in DATASETS:
        dataset = bench_dataset(dataset_name)
        row = {"dataset": dataset_name}
        for name in PARTITIONERS:
            config = quick_config(partitioner=name, epochs=EPOCHS,
                                  batch_size=128, fanout=(10, 10))
            result = Trainer(dataset, config).run()
            row[name] = round(1e3 * result.curve.mean_epoch_seconds, 3)
        rows.append(row)
    return rows


def test_fig08_epoch_time(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows,
                       title="Figure 8: epoch time (simulated ms)"))
    for row in rows:
        metis_mean = (row["metis-v"] + row["metis-ve"]
                      + row["metis-vet"]) / 3
        # Hash epochs are the longest of the communicating methods.
        assert row["hash"] >= metis_mean
        # Stream-V's L-hop caching buys the shortest epoch.
        assert row["stream-v"] == min(
            row[m] for m in PARTITIONERS)
        # Metis variants sit close together (paper: "the epoch time for
        # each [Metis] graph partitioning method is similar").
        metis_values = [row["metis-v"], row["metis-ve"], row["metis-vet"]]
        assert max(metis_values) < 1.6 * min(metis_values)


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 8"))
