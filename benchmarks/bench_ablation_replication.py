"""Ablation: partition-aware feature replication budget (SALIENT++).

Sweeps the per-machine replication budget and reports how much of the
Metis partitioning's residual communication it removes — the caching
idea behind SALIENT++'s Table 1 entry, here measured through the same
workload accounting as Figures 4-5.
"""

import numpy as np

from repro.core import format_table
from repro.partition import (MetisPartitioner, measure_workload,
                             partition_aware_replication)
from repro.sampling import NeighborSampler

from common import bench_dataset, run_once

DATASET = "ogb-products"
BUDGETS = (0.0, 0.1, 0.2, 0.4)


def build_rows():
    dataset = bench_dataset(DATASET)
    sampler = NeighborSampler((10, 10))
    base = MetisPartitioner("ve").partition(
        dataset.graph, 4, split=dataset.split,
        rng=np.random.default_rng(0))
    rows = []
    for budget in BUDGETS:
        if budget == 0.0:
            partition = base
        else:
            partition = partition_aware_replication(
                dataset, base, sampler, budget,
                rng=np.random.default_rng(1))
        report = measure_workload(dataset, partition, sampler, 256,
                                  rng=np.random.default_rng(2))
        rows.append({
            "budget": budget,
            "replication factor":
                round(partition.replication_factor(), 2),
            "comm (MB)": round(report.total_comm_bytes / 1e6, 3),
            "comm imbalance": round(report.comm_imbalance, 2),
        })
    return rows


def test_ablation_replication_budget(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Ablation: replication ({DATASET})"))
    volumes = [row["comm (MB)"] for row in rows]
    # Monotone: more replication budget, less communication.
    assert all(a >= b for a, b in zip(volumes, volumes[1:]))
    # The largest budget removes a substantial share.
    assert volumes[-1] < 0.7 * volumes[0]
    # Replication factor grows with the budget.
    factors = [row["replication factor"] for row in rows]
    assert factors[-1] > factors[0]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: replication"))
