"""Table 1: summary of representative GNN systems and data management
techniques.

Prints the 24-system taxonomy and checks its aggregate structure
(platform mix, optimization adoption over time).
"""

from repro.core import format_table, table1_rows

from common import run_once


def build_table():
    rows = table1_rows()
    text = format_table(
        rows,
        columns=["year", "system", "platform", "partition", "train",
                 "sample", "sample_method", "transfer", "pipeline",
                 "cache"],
        title="Table 1: representative GNN systems")
    return rows, text


def test_table1_taxonomy(benchmark):
    rows, text = run_once(benchmark, build_table)
    print()
    print(text)
    assert len(rows) == 24
    # The paper's narrative: mini-batch + sampling is the mainstream.
    minibatch = [r for r in rows if r["train"] == "Mini-batch"]
    assert len(minibatch) > len(rows) / 2
    # GPU caching only appears from 2020 (PaGraph) on.
    cached = [r for r in rows if r["cache"] == "yes"]
    assert min(r["year"] for r in cached) == 2020


if __name__ == "__main__":
    print(build_table()[1])
