"""Figure 5: communication load of different partitionings.

Per machine: remote sampled-subgraph bytes plus remote feature bytes
received during one epoch.  Paper findings: hash has the most balanced
but highest communication; Metis-V has the lowest total volume (best
clustering); Stream-V needs (almost) no communication because it caches
L-hop neighborhoods; Stream-B reduces volume but ignores balance.
"""

import numpy as np

from repro.core import format_table, make_partitioner
from repro.partition import measure_workload
from repro.sampling import NeighborSampler

from common import LABELED, PARTITIONERS, bench_dataset, run_once

# Assertions run on the products stand-in; all four labeled datasets
# are measured and printed, mirroring the paper's multi-dataset panels.
DATASET = "ogb-products"


def build_rows(datasets=(DATASET,)):
    sampler = NeighborSampler((10, 10))
    rows = []
    for dataset_name in datasets:
        dataset = bench_dataset(dataset_name)
        for name in PARTITIONERS:
            partitioner = make_partitioner(name)
            result = partitioner.partition(dataset.graph, 4,
                                           split=dataset.split,
                                           rng=np.random.default_rng(1))
            report = measure_workload(dataset, result, sampler,
                                      batch_size=256,
                                      rng=np.random.default_rng(2))
            comm = [m.comm_bytes / 1e6 for m in report.machines]
            rows.append({
                "dataset": dataset_name,
                "method": name,
                "m0 (MB)": round(comm[0], 2),
                "m1 (MB)": round(comm[1], 2),
                "m2 (MB)": round(comm[2], 2),
                "m3 (MB)": round(comm[3], 2),
                "total (MB)": round(report.total_comm_bytes / 1e6, 2),
                "imbalance": round(report.comm_imbalance, 2),
            })
    return rows


def test_fig05_communication_load(benchmark):
    rows = run_once(benchmark, lambda: build_rows(LABELED))
    print()
    print(format_table(rows, title="Figure 5: communication load"))
    by_name = {r["method"]: r for r in rows
               if r["dataset"] == DATASET}
    totals = {m: by_name[m]["total (MB)"] for m in PARTITIONERS}
    # Hash communicates the most; balanced across machines.
    assert totals["hash"] == max(totals.values())
    assert by_name["hash"]["imbalance"] < 1.2
    # Metis clustering cuts volume well below hash.
    for metis in ("metis-v", "metis-ve", "metis-vet"):
        assert totals[metis] < 0.85 * totals["hash"]
    # Stream-V: (near-)zero communication thanks to L-hop caching.
    assert totals["stream-v"] < 0.05 * totals["hash"]


if __name__ == "__main__":
    print(format_table(build_rows(LABELED), title="Figure 5"))
