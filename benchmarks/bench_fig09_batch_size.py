"""Figure 9: accuracy and convergence speed when varying batch size.

The paper's two phenomena (§6.3.1):

1. reducing the batch size speeds up convergence — until a lower knee,
   after which it slows down again;
2. increasing the batch size raises accuracy — until an upper knee,
   after which accuracy drops.

The sweep trains the same model with batch sizes from tiny to full-batch
and reports best accuracy and simulated time-to-target.
"""

from repro import Trainer
from repro.core import format_table

from common import bench_dataset, quick_config, run_once

DATASET = "reddit"
EPOCHS = 20
SIZES = (16, 128, 512, "full")


def build_rows():
    dataset = bench_dataset(DATASET)
    target = None
    rows = []
    for size in SIZES:
        batch = len(dataset.train_ids) if size == "full" else size
        config = quick_config(epochs=EPOCHS, batch_size=batch,
                              num_workers=1, partitioner="hash",
                              fanout=(10, 10))
        result = Trainer(dataset, config).run()
        curve = result.curve
        if target is None:
            target = 0.8 * curve.best_accuracy
        rows.append({
            "batch size": size,
            "best val acc": round(curve.best_accuracy, 3),
            "time to target (sim s)": curve.time_to_accuracy(target),
            "mean epoch (sim s)": round(curve.mean_epoch_seconds, 5),
            "final val acc": round(curve.val_accuracies[-1], 3),
        })
    return rows


def test_fig09_batch_size(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Figure 9: batch size ({DATASET})"))
    by_size = {r["batch size"]: r for r in rows}
    # Phenomenon 1: a moderate batch converges faster (in simulated
    # time) than full-batch; the tiniest batch is no longer the fastest.
    t = {s: by_size[s]["time to target (sim s)"] for s in SIZES}
    assert t[128] is not None
    assert t["full"] is None or t[128] < t["full"]
    assert t[16] is None or t[128] <= t[16] * 1.5
    # Phenomenon 2: full-batch (1 update/epoch) cannot match the
    # accuracy of moderate batches within the budget.
    assert by_size["full"]["best val acc"] < by_size[128]["best val acc"]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 9"))
