"""Figure 12: accuracy and convergence of different fanout settings and
sample-rate settings (Arxiv).

Paper findings (§6.3.3-6.3.4): accuracy over fanout follows a "first
increase then decrease" arc (best around a moderate (8, 8)) while
convergence speed arcs the other way; sample-rate sampling is overall
*lower* accuracy than fanout, because small rates starve low-degree
vertices.

Reproduction note: on our synthetic stand-ins every neighbor carries
label signal (planted homophily), so accuracy *saturates* with fanout
instead of dipping at (32, 32); the convergence-speed arc (moderate
fanout fastest in simulated time) and the fanout-over-rate ordering do
reproduce.  Recorded in EXPERIMENTS.md.
"""

from repro import Trainer
from repro.core import format_table
from repro.sampling import NeighborSampler, RateSampler

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-arxiv"
EPOCHS = 18
FANOUTS = ((2, 2), (8, 8), (32, 32))
RATES = (0.05, 0.3, 0.9)


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for fanout in FANOUTS:
        config = quick_config(epochs=EPOCHS, batch_size=128,
                              num_workers=1, partitioner="hash",
                              sampler=NeighborSampler(fanout))
        result = Trainer(dataset, config).run()
        rows.append({
            "setting": f"fanout{fanout}",
            "kind": "fanout",
            "best val acc": round(result.best_val_accuracy, 3),
            "time to 90% best (sim s)":
                result.curve.convergence_time(0.90),
            "mean epoch (sim s)":
                round(result.curve.mean_epoch_seconds, 5),
        })
    for rate in RATES:
        config = quick_config(epochs=EPOCHS, batch_size=128,
                              num_workers=1, partitioner="hash",
                              sampler=RateSampler(rate, num_layers=2))
        result = Trainer(dataset, config).run()
        rows.append({
            "setting": f"rate({rate})",
            "kind": "rate",
            "best val acc": round(result.best_val_accuracy, 3),
            "time to 90% best (sim s)":
                result.curve.convergence_time(0.90),
            "mean epoch (sim s)":
                round(result.curve.mean_epoch_seconds, 5),
        })
    return rows


def test_fig12_fanout_and_rate(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Figure 12: fanout & rate ({DATASET})"))
    fanout_rows = {r["setting"]: r for r in rows if r["kind"] == "fanout"}
    rate_rows = {r["setting"]: r for r in rows if r["kind"] == "rate"}
    fanout_acc = {k: r["best val acc"] for k, r in fanout_rows.items()}
    rate_acc = {k: r["best val acc"] for k, r in rate_rows.items()}
    # Accuracy rises from the starved (2, 2) fanout.
    assert fanout_acc["fanout(8, 8)"] >= fanout_acc["fanout(2, 2)"] - 0.005
    # Convergence-speed arc: the moderate fanout reaches 90% of its best
    # faster than the huge fanout (whose epochs are the most expensive).
    t90 = {k: r["time to 90% best (sim s)"]
           for k, r in fanout_rows.items()}
    assert t90["fanout(8, 8)"] is not None
    assert (t90["fanout(32, 32)"] is None
            or t90["fanout(8, 8)"] < t90["fanout(32, 32)"])
    # Rate-based sampling never beats the best fanout (paper: "the
    # overall accuracy of the sampling rate is lower than that of
    # fanout").
    assert max(rate_acc.values()) <= max(fanout_acc.values()) + 0.005
    # Tiny rates starve low-degree vertices hardest.
    assert rate_acc["rate(0.05)"] == min(rate_acc.values())


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 12"))
