"""Figure 13: performance gain analysis of data transfer optimizations.

Baseline (explicit extract-load, no pipelining) vs Baseline+Z
(zero-copy) vs Baseline+Z+P (zero-copy + full pipelining), per-epoch
simulated time.  The paper reports average gains of 1.74x for zero-copy
and 2.26x with pipelining on top; our cost model lands in the same
regime (~1.4x / ~1.9x) with the same ordering.
"""

from repro import Trainer
from repro.core import format_table

from common import TRANSFER, bench_dataset, quick_config, run_once

EPOCHS = 3
VARIANTS = (
    ("Baseline", "extract-load", "none"),
    ("Baseline+Z", "zero-copy", "none"),
    ("Baseline+Z+P", "zero-copy", "bp+dt"),
)


def build_rows():
    rows = []
    for dataset_name in TRANSFER[:3]:
        dataset = bench_dataset(dataset_name)
        times = {}
        for label, transfer, pipeline in VARIANTS:
            config = quick_config(epochs=EPOCHS, batch_size=512,
                                  num_workers=1, partitioner="hash",
                                  transfer=transfer, pipeline=pipeline)
            result = Trainer(dataset, config).run()
            times[label] = result.curve.mean_epoch_seconds
        base = times["Baseline"]
        row = {"dataset": dataset_name}
        row.update({label: f"{base / seconds:.2f}x"
                    for label, seconds in times.items()})
        row["_times"] = times
        rows.append(row)
    return rows


def test_fig13_transfer_optimizations(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    printable = [{k: v for k, v in row.items() if k != "_times"}
                 for row in rows]
    print(format_table(printable,
                       title="Figure 13: transfer optimization gains"))
    for row in rows:
        times = row["_times"]
        # Zero-copy removes the extraction phase: a solid gain.
        assert times["Baseline+Z"] < 0.85 * times["Baseline"]
        # Pipelining stacks a further gain on top.
        assert times["Baseline+Z+P"] < times["Baseline+Z"]
        # Combined gain lands in the paper's regime (>1.5x).
        assert times["Baseline"] / times["Baseline+Z+P"] > 1.5


if __name__ == "__main__":
    for row in build_rows():
        print({k: v for k, v in row.items() if k != "_times"})
