"""Table 3: summary of evaluated partitioning methods.

Prints the six methods with strategy, representative system, and the
§5.1 goals each meets, then cross-checks the registry against the actual
partitioner implementations.
"""

from repro.core import format_table, make_partitioner, table3_rows

from common import run_once

NAME_OF = {"Hash": "hash", "Metis-V": "metis-v", "Metis-VE": "metis-ve",
           "Metis-VET": "metis-vet", "Stream-V": "stream-v",
           "Stream-B": "stream-b"}


def build_rows():
    rows = table3_rows()
    for row in rows:
        partitioner = make_partitioner(NAME_OF[row["method"]])
        row["implementation"] = type(partitioner).__name__
    return rows


def test_table3_partitioners(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Table 3: evaluated partitioners"))
    assert len(rows) == 6
    assert all(row["implementation"] for row in rows)
    hash_row = next(r for r in rows if r["method"] == "Hash")
    assert hash_row["goals"] == ["G2", "G4"]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Table 3"))
