"""Fleet chaos certification: the resilience layer vs the baseline.

``bench_fleet.py`` shows the fleet scaling under healthy load; this
benchmark certifies it under *faults*.  Both configurations face the
identical composable schedules (crash storm, rolling stragglers,
slowlink window, flapping replica) on the simulated clock:

* **baseline** — PR 7's fleet: single shard ownership, no detector,
  crash orphans re-routed only after the 10 ms retry timeout;
* **resilient** — k=2 replicated shards, phi-accrual failure
  detection, circuit breakers, p95-delay hedged requests with
  first-response-wins cancellation, retry budgets, and checkpointed
  cache recovery.

Availability is SLO-attainment (a request answered within 5 ms of
arrival); the gates assert the layer is worth its complexity:

1. the baseline driven through a ``FleetSchedule`` is bit-identical to
   the legacy ``crashes=`` run (PR 7 parity — resilience off is a
   perfect no-op);
2. every run's predictions bit-match the single-server ``ServeEngine``
   — including answers served by backup owners and hedge winners;
3. under the identical crash storm the resilient fleet sustains
   strictly higher availability and strictly lower p99;
4. the machinery demonstrably ran: backup-served completions > 0 and
   hedge wins > 0.

Results are written to ``BENCH_fleet_chaos.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.core import format_table
from repro.fleet import run_fleet_chaos_bench

RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_fleet_chaos.json"


def build_results(quick=False):
    report = run_fleet_chaos_bench(
        dataset="ogb-arxiv", scale=0.3, model="gcn", train_epochs=2,
        num_replicas=4, base_rate=2000.0, rate_multiplier=50.0,
        num_requests=1200, skew=0.8, seed=0, partitioner="metis-v",
        replication=2, slo=0.005, quick=quick)
    RESULT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    return report


def report_table(report):
    rows = []
    for row in report["scenarios"]:
        for config in ("baseline", "resilient"):
            result = row[config]
            rows.append({
                "scenario": row["scenario"],
                "config": config,
                "avail": round(result["availability"], 4),
                "goodput/s": round(result["goodput"], 1),
                "p99 (ms)": round(1e3 * result["latency_p99"], 3),
                "dropped": result["dropped"],
                "requeued": result["requeued"],
                "backup": result.get("backup_completions", 0),
            })
    title = (f"Fleet chaos ({report['dataset']}, "
             f"{report['num_replicas']} replicas, "
             f"k={report['replication']}, "
             f"SLO={1e3 * report['slo_seconds']:g}ms)")
    gates = "\n".join(f"gate {name}: {'ok' if ok else 'VIOLATED'}"
                      for name, ok in report["gates"].items())
    return format_table(rows, title=title) + "\n" + gates


def test_fleet_chaos(benchmark):
    from common import run_once

    report = run_once(benchmark, build_results)
    print()
    print(report_table(report))
    # The ISSUE's acceptance bar.
    assert all(report["gates"].values())
    storm = report["scenarios"][0]
    assert storm["scenario"] == "crash_storm"
    assert storm["resilient"]["availability"] \
        > storm["baseline"]["availability"]
    assert storm["resilient"]["latency_p99"] \
        < storm["baseline"]["latency_p99"]
    assert storm["resilient"]["backup_completions"] > 0
    stragglers = report["scenarios"][1]
    assert stragglers["resilient"]["resilience"]["hedges_won"] > 0
    # The detector actually beat the 10 ms timeout.
    delay = storm["resilient"]["resilience"]["mean_detection_delay"]
    assert delay is not None and delay < 0.01


if __name__ == "__main__":
    import sys

    from repro.perf import FLAGS

    if "--sanitize" in sys.argv[1:]:
        FLAGS.sanitize = True
    print(report_table(build_results(
        quick="--quick" in sys.argv[1:])))
    print(f"wrote {RESULT_PATH}")
