"""Ablation: the multilevel partitioner's knobs.

DESIGN.md's "one partitioner framework" choice rests on the multilevel
machinery actually earning its keep.  This ablation turns the pieces
off: refinement passes (0/1/3) and the allowed imbalance epsilon, and
measures the edge cut and balance each configuration reaches.
"""

import numpy as np

from repro.core import format_table
from repro.partition import balance_ratio, edge_cut_fraction, metis_partition

from common import bench_dataset, run_once

DATASET = "ogb-products"


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for passes in (0, 1, 3):
        for imbalance in (0.05, 0.1, 0.3):
            cuts, balances = [], []
            for seed in range(3):
                assignment = metis_partition(
                    dataset.graph, 4, rng=np.random.default_rng(seed),
                    imbalance=imbalance, refine_passes=passes)
                cuts.append(edge_cut_fraction(dataset.graph, assignment))
                balances.append(balance_ratio(assignment, 4))
            rows.append({
                "refine passes": passes,
                "imbalance eps": imbalance,
                "edge cut": round(float(np.mean(cuts)), 3),
                "vertex balance": round(float(np.mean(balances)), 3),
            })
    return rows


def test_ablation_metis_knobs(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Ablation: metis knobs ({DATASET})"))

    def mean_cut(passes):
        return np.mean([r["edge cut"] for r in rows
                        if r["refine passes"] == passes])

    # Refinement earns its keep: 3 passes beat none on cut quality.
    assert mean_cut(3) < mean_cut(0)
    # Balance stays bounded at every configuration.
    assert all(r["vertex balance"] < 1.6 for r in rows)
    # Loose epsilon never hurts the cut (more freedom to cluster).
    tight = np.mean([r["edge cut"] for r in rows
                     if r["imbalance eps"] == 0.05])
    loose = np.mean([r["edge cut"] for r in rows
                     if r["imbalance eps"] == 0.3])
    assert loose <= tight + 0.02


if __name__ == "__main__":
    print(format_table(build_rows(), title="Ablation: metis knobs"))
