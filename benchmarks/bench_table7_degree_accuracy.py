"""Table 7: prediction accuracy of high- vs low-degree vertices under
different fanouts (Arxiv).

Paper findings (§6.3.3): as fanout grows, accuracy on high-degree
vertices increases (more of their many neighbors get sampled) while
accuracy on low-degree vertices stays flat or declines — a fixed fanout
cannot serve both populations, motivating the hybrid sampler.
"""

import numpy as np

from repro import Trainer
from repro.core import format_table
from repro.core.trainer import evaluate_model
from repro.sampling import NeighborSampler

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-arxiv"
EPOCHS = 15
FANOUTS = ((2, 2), (8, 8), (16, 16))


def degree_groups(dataset):
    """Split test vertices into low/high degree halves around the
    median degree."""
    degrees = dataset.graph.out_degrees[dataset.test_ids]
    median = np.median(degrees)
    low = dataset.test_ids[degrees <= median]
    high = dataset.test_ids[degrees > median]
    return low, high


def build_rows():
    dataset = bench_dataset(DATASET)
    low_ids, high_ids = degree_groups(dataset)
    low_row = {"vertex type": "low-degree"}
    high_row = {"vertex type": "high-degree"}
    for fanout in FANOUTS:
        sampler = NeighborSampler(fanout)
        config = quick_config(epochs=EPOCHS, batch_size=128,
                              num_workers=1, partitioner="hash",
                              sampler=sampler)
        trainer = Trainer(dataset, config)
        engine, _partition, _sampler, model, _opt = trainer._build_engine()
        rng = config.rng(salt=100)
        for _epoch in range(EPOCHS):
            engine.run_epoch(128, rng)
        eval_rng = np.random.default_rng(55)
        label = f"fanout{fanout}"
        low_row[label] = round(evaluate_model(
            model, dataset, low_ids, sampler, eval_rng), 3)
        high_row[label] = round(evaluate_model(
            model, dataset, high_ids, sampler, eval_rng), 3)
    return [low_row, high_row]


def test_table7_degree_accuracy(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Table 7: accuracy by degree "
                                   f"({DATASET})"))
    low, high = rows
    small, large = "fanout(2, 2)", "fanout(16, 16)"
    # High-degree vertices gain from larger fanouts.
    assert high[large] > high[small]
    # Low-degree vertices gain much less (their neighborhoods are
    # exhausted early): the high-degree gain dominates.
    low_gain = low[large] - low[small]
    high_gain = high[large] - high[small]
    assert high_gain > low_gain


if __name__ == "__main__":
    print(format_table(build_rows(), title="Table 7"))
