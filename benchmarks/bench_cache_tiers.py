"""Tiered feature caching: transfer seconds vs budget, skew, policy.

The paper measures GPU feature caching as a flat, single-tier question
(§5.3: which vertices to pin in spare GPU memory).  BGL-family systems
manage a *hierarchy* instead — GPU-hot, pinned-host-warm, disk-cold —
and this benchmark measures what the extra tier buys, through the same
hardware cost model as every other experiment:

* **training mode**: Zipf-skewed seed batches are sampled exactly as an
  epoch would, and each batch's ``input_nodes`` stream through
  :class:`~repro.transfer.methods.ExtractLoad`'s tier-by-tier billing;
* **serve mode**: a seeded :class:`~repro.serve.requests.LoadGenerator`
  trace is batched and billed row-by-row through
  :meth:`~repro.transfer.tiered.TieredCache.fetch_seconds`.

At every (skew, total budget) point the same budget is spent five ways:
flat single-tier LRU (all budget GPU-hot — the disk-backed analogue of
the paper's dynamic baseline) against tiered lru/lfu/degree/presample
splits (half hot, half warm).  The headline check: for skew >= 0.8 the
frequency-informed tiered policies (lfu / presample) beat flat LRU on
data-transfer seconds at the same total budget.

``--micro`` additionally times the vectorized
:class:`~repro.transfer.cache.LRUCache` bookkeeping against the
scan-and-sort implementation it replaced (wall clock — this is a real
micro-benchmark, not simulated time).

Results are written to ``BENCH_cache.json`` at the repo root.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import format_table
from repro.graph import load_dataset
from repro.sampling import NeighborSampler
from repro.serve.requests import LoadGenerator
from repro.transfer import (DEFAULT_SPEC, BatchStats, ExtractLoad,
                            TieredCache, make_tiered_cache)
from repro.transfer.cache import GPUCache, presample_frequencies

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"

SKEWS = (0.4, 0.8, 1.2)
#: Total budgets are deliberately scarce relative to the access
#: footprint: once a tier holds the whole working set, admission policy
#: stops mattering and every split of the same budget ties.
BUDGETS = (0.05, 0.1)
#: (label, hot share of the budget, policy).  Flat LRU spends the whole
#: budget on the GPU tier — the single-tier baseline in the same
#: disk-backed cost model.
POLICIES = (
    ("flat-lru", 1.0, "lru"),
    ("tiered-lru", 0.5, "lru"),
    ("tiered-lfu", 0.5, "lfu"),
    ("tiered-degree", 0.5, "degree"),
    ("tiered-presample", 0.5, "presample"),
)

FULL = dict(scale=0.4, train_batches=60, batch_size=256, fanout=(4, 4),
            num_requests=2000, serve_batch=8)
QUICK = dict(scale=0.15, train_batches=24, batch_size=128, fanout=(4, 4),
             num_requests=600, serve_batch=8)


def _zipf_population(ids, skew, rng):
    """A Zipf(``skew``) popularity distribution over ``ids`` with the
    rank-to-id assignment drawn from ``rng``."""
    ranks = np.arange(1, len(ids) + 1, dtype=np.float64)
    weights = ranks ** -skew
    population = ids[rng.permutation(len(ids))]
    return population, weights / weights.sum()


def _build_cache(data, label, hot_share, policy, budget, *, sampler,
                 presample_seeds, serve_scores, rng):
    hot = budget * hot_share
    warm = budget - hot
    if policy == "presample" and serve_scores is not None:
        # Serve mode has no sampler behind the rows: "presample" means
        # frequencies measured on the trace prefix (static placement).
        return make_tiered_cache("static", data.graph, hot, warm,
                                 scores=serve_scores)
    return make_tiered_cache(policy, data.graph, hot, warm,
                             sampler=sampler, seeds=presample_seeds,
                             rng=rng)


def _training_sweep(data, params, skew, budget):
    """One epoch's worth of Zipf-skewed batches through ExtractLoad's
    tiered billing, once per policy (identical batch stream)."""
    sampler = NeighborSampler(params["fanout"])
    rng = np.random.default_rng(7)
    population, probs = _zipf_population(data.train_ids, skew, rng)
    batches = [rng.choice(population, size=params["batch_size"], p=probs)
               for _ in range(params["train_batches"])]
    # The pre-sampling pass measures the same skewed seed distribution
    # the benchmark replays (GNNLab's offline profiling step).
    presample_seeds = np.concatenate(batches[:8])

    subgraphs = [sampler.sample(data.graph, np.unique(batch),
                                np.random.default_rng(11 + i))
                 for i, batch in enumerate(batches)]
    stats = [BatchStats.from_subgraph(s, data) for s in subgraphs]

    method = ExtractLoad()
    rows = []
    for label, hot_share, policy in POLICIES:
        cache = _build_cache(data, label, hot_share, policy, budget,
                             sampler=sampler,
                             presample_seeds=presample_seeds,
                             serve_scores=None,
                             rng=np.random.default_rng(13))
        total = 0.0
        tier_totals = {"hot": 0.0, "warm": 0.0, "cold": 0.0}
        for stat in stats:
            breakdown = method.transfer(stat, DEFAULT_SPEC, cache=cache)
            total += breakdown.total_seconds
            for tier, value in sorted((breakdown.tier_seconds
                                       or {}).items()):
                tier_totals[tier] += value
        rows.append({
            "mode": "train", "skew": skew, "budget": budget,
            "policy": label, "transfer_seconds": total,
            "hot_hit_rate": cache.hot_hit_rate,
            "warm_hit_rate": cache.warm_hit_rate,
            "tier_seconds": tier_totals,
        })
    return rows


def _serve_sweep(data, params, skew, budget):
    """A skewed request trace billed through each cache's tiered fetch
    (embedding-row bytes, batched like the micro-batcher would)."""
    trace = LoadGenerator(data.test_ids, rate=2000.0,
                          num_requests=params["num_requests"], seed=5,
                          skew=skew).generate()
    vertices = np.array([r.vertex for r in trace], dtype=np.int64)
    row_bytes = data.feature_dim * data.features.itemsize
    measured = np.zeros(data.graph.num_vertices)
    np.add.at(measured, vertices[:len(vertices) // 4], 1)

    size = params["serve_batch"]
    batches = [vertices[i:i + size]
               for i in range(0, len(vertices), size)]
    rows = []
    for label, hot_share, policy in POLICIES:
        cache = _build_cache(data, label, hot_share, policy, budget,
                             sampler=None, presample_seeds=None,
                             serve_scores=measured,
                             rng=np.random.default_rng(13))
        total = 0.0
        tier_totals = {"hot": 0.0, "warm": 0.0, "cold": 0.0}
        for batch in batches:
            _seconds, bill = cache.fetch_seconds(batch, row_bytes,
                                                 DEFAULT_SPEC)
            total += bill.total_seconds
            for tier, value in sorted(bill.tier_seconds().items()):
                tier_totals[tier] += value
        rows.append({
            "mode": "serve", "skew": skew, "budget": budget,
            "policy": label, "transfer_seconds": total,
            "hot_hit_rate": cache.hot_hit_rate,
            "warm_hit_rate": cache.warm_hit_rate,
            "tier_seconds": tier_totals,
        })
    return rows


def build_results(quick=False):
    params = QUICK if quick else FULL
    data = load_dataset("ogb-arxiv", scale=params["scale"])
    results = []
    for skew in SKEWS:
        for budget in BUDGETS:
            results.extend(_training_sweep(data, params, skew, budget))
            results.extend(_serve_sweep(data, params, skew, budget))
    report = {
        "dataset": data.name,
        "scale": params["scale"],
        "skews": list(SKEWS),
        "budgets": list(BUDGETS),
        "policies": [label for label, _share, _policy in POLICIES],
        "quick": quick,
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    return report


def check_headline(report):
    """The acceptance bar: frequency-informed tiered admission beats
    flat single-tier LRU on transfer seconds once the access pattern is
    skewed (skew >= 0.8), at the same total budget."""
    by_key = {}
    for row in report["results"]:
        key = (row["mode"], row["skew"], row["budget"])
        by_key.setdefault(key, {})[row["policy"]] = \
            row["transfer_seconds"]
    for (mode, skew, budget), policies in sorted(by_key.items()):
        if skew < 0.8:
            continue
        flat = policies["flat-lru"]
        best = min(policies["tiered-lfu"], policies["tiered-presample"])
        assert best < flat, (
            f"tiered lfu/presample ({best:.6f}s) should beat flat LRU "
            f"({flat:.6f}s) at mode={mode} skew={skew} budget={budget}")


def report_table(report):
    rows = []
    for row in report["results"]:
        rows.append({
            "mode": row["mode"],
            "skew": row["skew"],
            "budget": row["budget"],
            "policy": row["policy"],
            "transfer (ms)": round(1e3 * row["transfer_seconds"], 3),
            "hot hits": round(row["hot_hit_rate"], 3),
            "warm hits": round(row["warm_hit_rate"], 3),
        })
    return format_table(
        rows, title=f"Tiered cache sweep ({report['dataset']})")


# ----------------------------------------------------------------------
# --micro: the satellite LRU bookkeeping micro-benchmark
# ----------------------------------------------------------------------
class _LegacyLRUCache(GPUCache):
    """The pre-vectorization LRUCache miss path (full bitmap scan +
    full stable sort per eviction), kept verbatim for the before/after
    comparison."""

    policy = "legacy-lru"

    def __init__(self, num_vertices, ratio):
        from repro.transfer.cache import _capacity_from_ratio

        super().__init__([], num_vertices)
        self.capacity = _capacity_from_ratio(num_vertices, ratio)
        self._clock = 0
        self._last_used = np.full(num_vertices, -1, dtype=np.int64)
        self._resident = 0

    def lookup(self, vertices):
        vertices = np.asarray(vertices, dtype=np.int64)
        mask = self._bitmap[vertices]
        self.hits += int(mask.sum())
        self.misses += int((~mask).sum())
        self._clock += 1
        self._last_used[vertices[mask]] = self._clock
        hits = vertices[mask]
        missed = vertices[~mask]
        if self.capacity > 0 and len(missed):
            admit = np.unique(missed)
            overflow = self._resident + len(admit) - self.capacity
            if overflow > 0:
                resident_ids = np.flatnonzero(self._bitmap)
                order = np.argsort(self._last_used[resident_ids],
                                   kind="stable")
                evict = resident_ids[order[:overflow]]
                evict = np.setdiff1d(evict, admit, assume_unique=False)
                self._bitmap[evict] = False
                self._last_used[evict] = -1
                self._resident -= len(evict)
            room = self.capacity - self._resident
            admit = admit[:max(room, 0)]
            self._bitmap[admit] = True
            self._last_used[admit] = self._clock
            self._resident += len(admit)
        return hits, missed


def run_micro(num_vertices=200_000, ratio=0.1, batches=300,
              batch_size=4096, skew=0.8):
    """Wall-clock (real, not simulated) time of the legacy vs the
    vectorized LRU miss path on an identical Zipf access stream."""
    import time

    from repro.transfer import LRUCache

    rng = np.random.default_rng(3)
    population, probs = _zipf_population(
        np.arange(num_vertices, dtype=np.int64), skew, rng)
    stream = [rng.choice(population, size=batch_size, p=probs)
              for _ in range(batches)]

    timings = {}
    hit_counts = {}
    for name, factory in (("legacy", _LegacyLRUCache),
                          ("vectorized", LRUCache)):
        cache = factory(num_vertices, ratio)
        start = time.perf_counter()
        for batch in stream:
            cache.lookup(batch)
        timings[name] = time.perf_counter() - start
        hit_counts[name] = cache.hits
    # Same stream, same policy: the rewrite must not change behaviour.
    assert hit_counts["legacy"] == hit_counts["vectorized"], hit_counts
    return {
        "num_vertices": num_vertices, "ratio": ratio,
        "batches": batches, "batch_size": batch_size, "skew": skew,
        "legacy_seconds": timings["legacy"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": timings["legacy"] / timings["vectorized"],
        "hits": hit_counts["vectorized"],
    }


def test_cache_tiers(benchmark):
    from common import run_once

    report = run_once(benchmark, lambda: build_results(quick=True))
    print()
    print(report_table(report))
    check_headline(report)


if __name__ == "__main__":
    import sys

    quick = "--quick" in sys.argv[1:]
    if "--micro" in sys.argv[1:]:
        micro = run_micro()
        print(f"LRU miss-path micro-benchmark "
              f"({micro['batches']} x {micro['batch_size']} lookups, "
              f"|V|={micro['num_vertices']}):")
        print(f"  legacy     {1e3 * micro['legacy_seconds']:8.1f} ms")
        print(f"  vectorized {1e3 * micro['vectorized_seconds']:8.1f} ms"
              f"  ({micro['speedup']:.1f}x)")
        sys.exit(0)
    report = build_results(quick=quick)
    print(report_table(report))
    check_headline(report)
    print("headline: tiered lfu/presample beat flat LRU at skew >= 0.8")
    print(f"wrote {RESULT_PATH}")
