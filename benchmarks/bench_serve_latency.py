"""Online-serving latency under micro-batching policies and caches.

The paper evaluates GNN systems on *training* data management; this
benchmark extends the same lens to online inference.  The serving path
exercises the identical substrates the training experiments measure —
neighborhood sampling (batch preparation), feature/embedding transfer
(the Figure-7 axis), and GPU caching (§5.3) — under an open-loop
Poisson request stream, and reports tail latency instead of epoch time:

* **policy sweep**: small batches flush fast (low p50, low device
  occupancy) while large batches amortize kernels (high throughput,
  queueing-inflated p99) — the classic latency/throughput trade-off;
* **mode sweep**: on-demand ``sampled`` inference pays batch
  preparation per request, while ``precomputed`` layer-wise embedding
  tables reduce serving to a cached lookup plus the MLP head;
* **cache sweep**: LRU embedding caching under a skewed (Zipf-like)
  query popularity, reusing the training-side cache machinery.

The precomputed path is validated against exact full-fanout inference
(bit-identical logits, atol=0) before any timing is reported.

Results are written to ``BENCH_serve.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.core import format_table
from repro.serve import run_serve_bench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def build_results():
    report = run_serve_bench(
        dataset="ogb-arxiv", scale=0.3, model="gcn", train_epochs=2,
        rate=2000.0, num_requests=400, skew=0.8,
        policies=((4, 0.0005), (32, 0.004)),
        cache_ratios=(0.1, 0.5),
        modes=("sampled", "precomputed"), seed=0)
    RESULT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    return report


def report_table(report):
    rows = []
    for result in report["results"]:
        tiered = result["warm_ratio"] > 0
        rows.append({
            "mode": result["mode"],
            "policy": result["policy"],
            "cache": round(result["cache_ratio"]
                           + result["warm_ratio"], 3),
            "tiers": result["cache_policy"] if tiered else "-",
            "p50 (ms)": round(1e3 * result["latency_p50"], 3),
            "p99 (ms)": round(1e3 * result["latency_p99"], 3),
            "req/s": round(result["throughput"], 1),
            "hit rate": round(result["cache_hit_rate"], 3),
            "warm hit": round(result["warm_hit_rate"], 3),
        })
    title = (f"Serving latency ({report['dataset']}, {report['model']}, "
             f"rate={report['load']['rate']:g}/s)")
    return format_table(rows, title=title)


def test_serve_latency(benchmark):
    from common import run_once

    report = run_once(benchmark, build_results)
    print()
    print(report_table(report))
    # The ISSUE's acceptance bar: the invariant holds, and the sweep
    # covers >= 2 policies x >= 2 cache ratios.
    assert report["invariant_exact_match"] is True
    results = report["results"]
    assert len({r["policy"] for r in results}) >= 2
    assert len({r["cache_ratio"] for r in results}) >= 2
    # Precomputed serving beats on-demand sampled serving on median
    # latency for every matched (policy, cache) configuration.  The
    # tiered rows (warm_ratio > 0) use a different budget split and
    # have no sampled twin — they are checked for shape instead.
    sampled = {(r["policy"], r["cache_ratio"]): r["latency_p50"]
               for r in results if r["mode"] == "sampled"}
    for r in results:
        if r["mode"] == "precomputed" and r["warm_ratio"] == 0:
            key = (r["policy"], r["cache_ratio"])
            assert r["latency_p50"] < sampled[key]
    tiered = [r for r in results if r["warm_ratio"] > 0]
    assert tiered, "sweep lost its tiered-cache rows"
    for r in tiered:
        assert set(r["tier_seconds"]) == {"hot", "warm", "cold"}


if __name__ == "__main__":
    import sys

    from repro.perf import FLAGS

    if "--sanitize" in sys.argv[1:]:
        FLAGS.sanitize = True
    print(report_table(build_results()))
    print(f"wrote {RESULT_PATH}")
