"""Fault injection, recovery, and the cost of an unhealthy cluster.

The paper's measurements assume a healthy 4-node testbed; this
benchmark re-runs one seeded training configuration under injected
faults (``repro.faults``) and reports what each failure mode costs in
the same units the paper uses — simulated epoch time and accuracy:

* **straggler**: one worker 4x slower stretches every synchronous
  epoch toward the straggler's pace (the BSP tax);
* **flaky**: failed remote fetches pay retry timeouts/backoff in
  simulated time; the loss curve is untouched because exhausted
  retries fall back to slow-but-correct fetches;
* **slowlink**: degraded network bandwidth inflates the
  data-transferring step exactly as Figure 7's bandwidth axis would
  predict;
* **crash**: a dead worker either redistributes its training vertices
  to survivors or drops them (``crash_policy``), and the all-reduce
  ring shrinks to the survivors.

Two recovery invariants are *asserted*, not just reported: a run
halted at epoch 2 and resumed from its checkpoint reproduces the
uninterrupted loss/accuracy/epoch-time curve bit-identically, and the
same fault-plan seed reproduces the identical fault timeline.

Results are written to ``BENCH_faults.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.core import format_table
from repro.faults import run_fault_bench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def build_results():
    report = run_fault_bench(dataset="ogb-arxiv", scale=0.2,
                             model="gcn", epochs=6, workers=4,
                             halt_epoch=2, seed=0)
    RESULT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    return report


def report_table(report):
    rows = []
    for row in report["scenarios"]:
        rows.append({
            "scenario": row["scenario"],
            "epoch overhead": f"{100 * row['epoch_time_overhead']:+.1f}%",
            "retries": row["retries"],
            "giveups": row["giveups"],
            "alive": row["alive_workers"],
            "dropped": row["dropped_vertices"],
            "acc delta": round(row["accuracy_delta"], 3),
        })
    title = (f"Fault recovery ({report['dataset']}, "
             f"{report['workers']} workers, {report['epochs']} epochs)")
    return format_table(rows, title=title)


def test_fault_recovery(benchmark):
    from common import run_once

    report = run_once(benchmark, build_results)
    print()
    print(report_table(report))
    # Recovery invariants: the injected halt fired, the resumed run
    # bit-matches the uninterrupted one, and fault timelines replay
    # under a fixed seed.
    assert report["halt_fired"] is True
    assert report["resume_exact"] is True
    assert report["plan_deterministic"] is True
    by_name = {row["scenario"]: row for row in report["scenarios"]}
    # Non-destructive faults slow the clock without touching the math.
    for name in ("straggler", "flaky", "slowlink"):
        assert by_name[name]["epoch_time_overhead"] > 0
        assert by_name[name]["losses_match_healthy"] is True
        assert by_name[name]["alive_workers"] == report["workers"]
    assert by_name["flaky"]["retries"] > 0
    # Crashes shrink the cluster; only the drop policy loses vertices.
    for name in ("crash-redistribute", "crash-drop"):
        assert by_name[name]["alive_workers"] == report["workers"] - 1
    assert by_name["crash-redistribute"]["dropped_vertices"] == 0
    assert by_name["crash-drop"]["dropped_vertices"] > 0


if __name__ == "__main__":
    import sys

    from repro.perf import FLAGS

    if "--sanitize" in sys.argv[1:]:
        FLAGS.sanitize = True
    print(report_table(build_results()))
    print(f"wrote {RESULT_PATH}")
