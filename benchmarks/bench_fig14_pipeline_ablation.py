"""Figure 14: pipeline ablation.

Per-epoch time with no pipelining, with batch preparation pipelined, and
with all three stages pipelined (LiveJournal family).  Paper finding
(§7.3.2): pipelining helps but the effect stays under ~50% because the
data-transfer stage dominates and a pipeline cannot run faster than its
bottleneck stage.
"""

from repro import Trainer
from repro.core import format_table

from common import bench_dataset, quick_config, run_once

DATASETS = ("livejournal", "lj-links")
EPOCHS = 3
MODES = (("No pipe", "none"), ("Pipeline BP", "bp"),
         ("Pipeline BP and DT", "bp+dt"))


def build_rows():
    rows = []
    for dataset_name in DATASETS:
        dataset = bench_dataset(dataset_name)
        row = {"dataset": dataset_name}
        times = {}
        for label, mode in MODES:
            config = quick_config(epochs=EPOCHS, batch_size=512,
                                  num_workers=1, partitioner="hash",
                                  transfer="zero-copy", pipeline=mode)
            result = Trainer(dataset, config).run()
            times[label] = result.curve.mean_epoch_seconds
            row[label] = round(1e3 * times[label], 4)
        dt_share = Trainer(dataset, quick_config(
            epochs=1, batch_size=512, num_workers=1, partitioner="hash",
            transfer="zero-copy",
            pipeline="none")).run().step_breakdown()["data_transferring"]
        row["DT share"] = round(dt_share, 3)
        row["_times"] = times
        rows.append(row)
    return rows


def test_fig14_pipeline_ablation(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    printable = [{k: v for k, v in row.items() if k != "_times"}
                 for row in rows]
    print(format_table(printable,
                       title="Figure 14: pipeline ablation (epoch ms)"))
    for row in rows:
        times = row["_times"]
        # Each added pipelined stage helps (or at least never hurts).
        assert times["Pipeline BP"] <= times["No pipe"]
        assert times["Pipeline BP and DT"] <= times["Pipeline BP"]
        # But the gain is bounded by the dominant transfer stage:
        # "less than 50% improvement in most cases".
        speedup = times["No pipe"] / times["Pipeline BP and DT"]
        assert speedup < 2.0
        # Data transfer is indeed the bottleneck share.
        assert row["DT share"] > 0.4


if __name__ == "__main__":
    for row in build_rows():
        print({k: v for k, v in row.items() if k != "_times"})
