"""Figure 2: time portion of different steps in GNN vs DNN training.

The paper's motivating figure: in GNN training, data management (batch
preparation + data transferring) dominates; in DNN training (an MLP on
the same features, no graph), NN computation dominates.

The DNN profile is obtained by training the same MLP head on raw
features: batch preparation degenerates to slicing, transfers carry only
the batch's own rows (no neighbor explosion), and compute is the same
dense math.
"""

import numpy as np

from repro import Trainer
from repro.core import format_table
from repro.transfer import DEFAULT_SPEC

from common import bench_dataset, quick_config, run_once

DATASETS = ("reddit", "ogb-arxiv")


def gnn_breakdown(dataset):
    config = quick_config(epochs=3, num_workers=1, partitioner="hash",
                          transfer="extract-load", pipeline="none",
                          batch_size=512)
    result = Trainer(dataset, config).run()
    return result.step_breakdown()


def dnn_breakdown(dataset, batch_size=512, epochs=3,
                  kernel_overhead=50e-6, kernels_per_step=6):
    """Cost profile of the equivalent 2-layer MLP (no graph).

    A small-MLP training step is kernel-launch dominated: each of its ~6
    kernels (2 layers x forward/backward/update) processes only
    ``batch_size`` rows, so the fixed per-launch overhead dwarfs the
    arithmetic.  GNN steps amortize the same overhead over the 10-50x
    larger neighborhood-expanded row counts, which is why the overhead
    term is negligible there (and omitted from the GNN cost model).
    """
    spec = DEFAULT_SPEC
    feat_bytes = dataset.feature_dim * 4
    hidden = 128
    n_train = len(dataset.train_ids)
    steps = int(np.ceil(n_train / batch_size))
    bp = dt = nn = 0.0
    for _step in range(steps * epochs):
        rows = min(batch_size, n_train)
        payload = rows * feat_bytes
        bp += payload / (10 * spec.cpu_gather_bandwidth)  # slice, no gather
        # DNN rows are contiguous: no scattered gather, just the DMA.
        dt += spec.pcie_time(payload)
        flops = 3 * (2 * rows * dataset.feature_dim * hidden
                     + 2 * rows * hidden * dataset.num_classes)
        nn += spec.compute_time(flops) + kernel_overhead * kernels_per_step
    total = bp + dt + nn
    return {"batch_preparation": bp / total,
            "data_transferring": dt / total,
            "nn_computation": nn / total}


def build_rows():
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        for kind, shares in (("GNN", gnn_breakdown(dataset)),
                             ("DNN", dnn_breakdown(dataset))):
            row = {"dataset": name, "model": kind}
            row.update({k: round(v, 3) for k, v in shares.items()})
            rows.append(row)
    return rows


def test_fig02_step_breakdown(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Figure 2: step time portions"))
    for name in DATASETS:
        gnn = next(r for r in rows
                   if r["dataset"] == name and r["model"] == "GNN")
        dnn = next(r for r in rows
                   if r["dataset"] == name and r["model"] == "DNN")
        # GNN: data management dominates; NN is the minor share.
        data_mgmt = gnn["batch_preparation"] + gnn["data_transferring"]
        assert data_mgmt > 0.6
        assert gnn["nn_computation"] < 0.4
        # DNN: NN computation is the dominant single step.
        assert dnn["nn_computation"] > dnn["batch_preparation"]
        assert dnn["nn_computation"] > gnn["nn_computation"]


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 2"))
