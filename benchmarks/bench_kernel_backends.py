"""Sparse-kernel backend shoot-out: registry backends vs the reference.

The kernel registry (:mod:`repro.kernels`) dispatches every aggregation
in the library — GCN/SAGE's mean-aggregation SpMM, GAT's edge-score
SDDMM and edge softmax — to a pluggable backend selected by
``FLAGS.kernel_backend``.  This benchmark times each available backend
on all three kernels over one seeded power-law block workload, checks
byte-identity against the pinned numpy reference on the same run, and
merges the per-backend rows into ``BENCH_hotpath.json`` under
``kernel_backends`` (next to the block-assembly and sampler rows).

Run standalone::

    python benchmarks/bench_kernel_backends.py [--quick]
"""

import sys

from repro.kernels.bench import (format_report, merge_into_hotpath,
                                 run_kernel_bench)

from common import run_once


def build_results(quick=False):
    results = run_kernel_bench(quick=quick)
    merge_into_hotpath(results)
    return results


def test_kernel_backends(benchmark):
    results = run_once(benchmark, build_results)
    print()
    print(format_report(results))
    # The acceptance bar: at least one accelerated backend beats the
    # reference on the SpMM microbench, without a single bit of drift.
    assert results["spmm"]["best_backend"] != "reference"
    assert results["spmm"]["best_speedup"] > 1.0


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    results = build_results(quick=quick)
    print(format_report(results))
    print(f"merged kernel_backends into BENCH_hotpath.json "
          f"(auto backend: {results['auto_backend']})")
