"""Ablation: cost-model sensitivity of the paper-shape conclusions.

The hardware spec converts counts to seconds; this ablation perturbs its
two most judgement-laden constants — zero-copy efficiency and the
CPU gather bandwidth — by +/-30% and checks that the qualitative
conclusions of Figures 13 and 14 (zero-copy beats extract-load;
pipelining helps but stays under its bottleneck bound) survive, i.e.
that the reproduction's shapes are not knife-edge artifacts of the
calibration.
"""

from repro import Trainer
from repro.core import format_table
from repro.transfer import DEFAULT_SPEC

from common import bench_dataset, quick_config, run_once

DATASET = "livejournal"
EPOCHS = 2


def gains_under(spec):
    dataset = bench_dataset(DATASET)
    times = {}
    for label, transfer, pipeline in (
            ("baseline", "extract-load", "none"),
            ("zero-copy", "zero-copy", "none"),
            ("zero-copy+pipe", "zero-copy", "bp+dt")):
        config = quick_config(epochs=EPOCHS, batch_size=512,
                              num_workers=1, partitioner="hash",
                              transfer=transfer, pipeline=pipeline,
                              spec=spec)
        times[label] = Trainer(dataset, config).run().mean_epoch_seconds
    return {
        "Z gain": times["baseline"] / times["zero-copy"],
        "Z+P gain": times["baseline"] / times["zero-copy+pipe"],
    }


def build_rows():
    rows = []
    variants = {
        "calibrated": DEFAULT_SPEC,
        "zero-copy eff -30%": DEFAULT_SPEC.with_overrides(
            zero_copy_efficiency=DEFAULT_SPEC.zero_copy_efficiency * 0.7),
        "gather bw -30%": DEFAULT_SPEC.with_overrides(
            cpu_gather_bandwidth=DEFAULT_SPEC.cpu_gather_bandwidth * 0.7),
        "gather bw +30%": DEFAULT_SPEC.with_overrides(
            cpu_gather_bandwidth=DEFAULT_SPEC.cpu_gather_bandwidth * 1.3),
    }
    for label, spec in variants.items():
        gains = gains_under(spec)
        rows.append({"spec": label,
                     "Z gain": f"{gains['Z gain']:.2f}x",
                     "Z+P gain": f"{gains['Z+P gain']:.2f}x",
                     "_raw": gains})
    return rows


def test_ablation_cost_model_sensitivity(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    printable = [{k: v for k, v in row.items() if k != "_raw"}
                 for row in rows]
    print(format_table(printable,
                       title=f"Ablation: cost-model sensitivity "
                             f"({DATASET})"))
    for row in rows:
        gains = row["_raw"]
        # The orderings of Figures 13-14 hold at every perturbation.
        assert gains["Z gain"] > 1.0
        assert gains["Z+P gain"] > gains["Z gain"]
        assert gains["Z+P gain"] < 4.0  # bounded by the bottleneck


if __name__ == "__main__":
    for row in build_rows():
        print({k: v for k, v in row.items() if k != "_raw"})
