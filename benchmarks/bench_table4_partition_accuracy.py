"""Table 4: model accuracy under different partition methods.

The paper trains to convergence under each partitioning on Reddit,
OGB-Products, and Amazon and finds the highest validation accuracy
differs only within ±0.3-0.9%: partitioning does not lose graph
information (remote neighbors are still fetched), so it cannot change
reachable accuracy.
"""

from repro import Trainer
from repro.core import format_table

from common import PARTITIONERS, bench_dataset, quick_config, run_once

# Amazon's 107 classes leave few examples per class at benchmark scale,
# so it runs bigger and longer to actually converge (the paper's Amazon
# accuracy, 64%, is likewise the lowest of the three).
DATASETS = (("reddit", 0.5, 22), ("ogb-products", 0.5, 22),
            ("amazon", 1.0, 30))


def build_rows():
    rows = []
    for dataset_name, scale, epochs in DATASETS:
        dataset = bench_dataset(dataset_name, scale=scale)
        row = {"dataset": dataset_name}
        values = []
        for name in PARTITIONERS:
            config = quick_config(partitioner=name, epochs=epochs,
                                  batch_size=128, fanout=(10, 10))
            result = Trainer(dataset, config).run()
            accuracy = result.best_val_accuracy
            row[name] = f"{100 * accuracy:.1f}%"
            values.append(accuracy)
        row["diff"] = f"±{100 * (max(values) - min(values)) / 2:.1f}%"
        row["_spread"] = max(values) - min(values)
        rows.append(row)
    return rows


def test_table4_partition_accuracy(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    printable = [{k: v for k, v in row.items() if k != "_spread"}
                 for row in rows]
    print(format_table(printable,
                       title="Table 4: accuracy per partitioner"))
    # Partitioning leaves the reachable accuracy unchanged (the paper
    # sees at most ±0.9% on Amazon; we allow a little more noise at
    # simulation scale).
    for row in rows:
        assert row["_spread"] < 0.06, row


if __name__ == "__main__":
    for row in build_rows():
        print(row)
