"""Figure 11: accuracy and convergence of random vs cluster-based batch
selection.

Paper findings (§6.3.2): random selection reaches the higher accuracy
(no sampling bias) and trains stably; cluster-based selection shortens
epochs (shared neighbors) but introduces bias and unstable training —
visible as a higher variance of the per-batch subgraph density.
"""

import numpy as np

from repro import Trainer
from repro.batching import ClusterBatchSelector, RandomBatchSelector
from repro.core import format_table
from repro.dist.engine import SyncEngine
from repro.graph.metrics import local_clustering_coefficients

from common import bench_dataset, quick_config, run_once

DATASET = "ogb-products"
EPOCHS = 20


def run_with_selector(dataset, selector_name):
    """Train with a batch selector and also collect batch-density stats."""
    config = quick_config(epochs=EPOCHS, batch_size=128, num_workers=1,
                          partitioner="hash", fanout=(10, 10))
    trainer = Trainer(dataset, config)
    # Re-run the training loop manually to thread the selector through.
    engine, partition, sampler, model, _opt = trainer._build_engine()
    selector = (RandomBatchSelector() if selector_name == "random"
                else ClusterBatchSelector(dataset.graph))
    rng = config.rng(salt=100)
    from repro.core.trainer import evaluate_model
    curve = []
    times = []
    for _epoch in range(EPOCHS):
        stats = engine.run_epoch(128, rng, selector=selector)
        val = evaluate_model(model, dataset, dataset.val_ids, sampler,
                             np.random.default_rng(99))
        curve.append(val)
        times.append(stats.epoch_seconds)
    # Batch density variance: clustering coefficient of each batch's
    # seed-set, variance across batches of the last epoch.
    coeffs = local_clustering_coefficients(dataset.graph)
    densities = []
    batch_rng = np.random.default_rng(7)
    for batch in selector.batches(dataset.train_ids, 128, batch_rng):
        densities.append(float(coeffs[batch].mean()))
    return curve, times, float(np.var(densities))


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for name in ("random", "cluster-based"):
        curve, times, density_var = run_with_selector(dataset, name)
        rows.append({
            "selection": name,
            "best val acc": round(max(curve), 3),
            "mean epoch (sim s)": round(float(np.mean(times)), 5),
            "acc std (last 10 ep)": round(float(np.std(curve[-10:])), 4),
            "batch density variance": density_var,
        })
    return rows


def test_fig11_batch_selection(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title=f"Figure 11: batch selection "
                                   f"({DATASET})"))
    random_row = next(r for r in rows if r["selection"] == "random")
    cluster_row = next(r for r in rows if r["selection"] == "cluster-based")
    # Random selection: no bias -> at least as accurate.
    assert (random_row["best val acc"]
            >= cluster_row["best val acc"] - 0.01)
    # Cluster-based: shorter epochs (shared neighbors)...
    assert (cluster_row["mean epoch (sim s)"]
            < random_row["mean epoch (sim s)"])
    # ... but far more variable batch density (the instability source;
    # paper: 2e-4 vs 1.1e-6).
    assert (cluster_row["batch density variance"]
            > 5 * random_row["batch density variance"])


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 11"))
