"""Table 6: epoch time and involved vertices/edges of batch selection
methods.

Paper (Products): cluster-based batches involve ~0.6x the vertices and
~0.8x the edges of random batches and cut the epoch time by more than
half, because clustered seeds share sampled neighbors.
"""

import numpy as np

from repro import Trainer
from repro.batching import ClusterBatchSelector, RandomBatchSelector
from repro.core import format_table

from common import bench_dataset, quick_config, run_once

DATASETS = ("ogb-products", "reddit")
EPOCHS = 4


def measure(dataset, selector_name):
    config = quick_config(epochs=EPOCHS, batch_size=128, num_workers=1,
                          partitioner="hash", fanout=(10, 10))
    trainer = Trainer(dataset, config)
    engine, _partition, _sampler, _model, _opt = trainer._build_engine()
    selector = (RandomBatchSelector() if selector_name == "random"
                else ClusterBatchSelector(dataset.graph))
    rng = config.rng(salt=100)
    stats = [engine.run_epoch(128, rng, selector=selector)
             for _epoch in range(EPOCHS)]
    return {
        "epoch time (sim s)": float(np.mean(
            [s.epoch_seconds for s in stats])),
        "involved #V": float(np.mean(
            [s.involved_vertices for s in stats])),
        "involved #E": float(np.mean([s.involved_edges for s in stats])),
    }


def build_rows():
    rows = []
    for dataset_name in DATASETS:
        dataset = bench_dataset(dataset_name)
        for selector_name in ("random", "cluster-based"):
            row = {"dataset": dataset_name, "method": selector_name}
            row.update({k: round(v, 6)
                        for k, v in measure(dataset, selector_name).items()})
            rows.append(row)
    return rows


def test_table6_selection_cost(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Table 6: batch selection cost"))
    for dataset_name in DATASETS:
        random_row = next(r for r in rows if r["dataset"] == dataset_name
                          and r["method"] == "random")
        cluster_row = next(r for r in rows if r["dataset"] == dataset_name
                           and r["method"] == "cluster-based")
        # Cluster-based involves fewer vertices and edges per epoch...
        assert cluster_row["involved #V"] < random_row["involved #V"]
        assert cluster_row["involved #E"] < random_row["involved #E"]
        # ... and a shorter epoch.
        assert (cluster_row["epoch time (sim s)"]
                < random_row["epoch time (sim s)"])


if __name__ == "__main__":
    print(format_table(build_rows(), title="Table 6"))
