"""Deployment platform comparison (Table 1's platform axis).

The paper's narrative (§3): early systems ran on CPU clusters or a
single multi-GPU node; GPU clusters became the mainstream because they
combine accelerator throughput with scalable node counts.  This
benchmark trains the same workload on all three simulated platforms and
measures where each one's time goes.
"""

from repro import Trainer
from repro.core import config_for_platform, format_table
from repro.transfer import cpu_cluster, gpu_cluster, multi_gpu

from common import bench_dataset, run_once

DATASET = "reddit"
EPOCHS = 3

PLATFORMS = (cpu_cluster(4), multi_gpu(4), gpu_cluster(4))


def build_rows():
    dataset = bench_dataset(DATASET)
    rows = []
    for platform in PLATFORMS:
        config = config_for_platform(platform, epochs=EPOCHS,
                                     batch_size=256, fanout=(10, 10),
                                     partitioner="metis-ve")
        result = Trainer(dataset, config).run()
        shares = result.step_breakdown()
        rows.append({
            "platform": str(platform),
            "epoch (sim ms)": round(
                1e3 * result.curve.mean_epoch_seconds, 3),
            "BP share": round(shares["batch_preparation"], 3),
            "DT share": round(shares["data_transferring"], 3),
            "NN share": round(shares["nn_computation"], 3),
            "best val acc": round(result.best_val_accuracy, 3),
        })
    return rows


def test_platform_comparison(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows,
                       title=f"Platform comparison ({DATASET})"))
    by_name = {r["platform"].split()[0]: r for r in rows}
    cpu = by_name["cpu-cluster"]
    mgpu = by_name["multi-gpu"]
    cluster = by_name["gpu-cluster"]
    # CPU cluster: compute-heavy profile (no accelerator), slowest NN
    # share of the three.
    assert cpu["NN share"] > cluster["NN share"]
    # Multi-GPU: NVLink makes worker exchange cheap — fastest epochs.
    assert mgpu["epoch (sim ms)"] < cluster["epoch (sim ms)"]
    assert mgpu["epoch (sim ms)"] < cpu["epoch (sim ms)"]
    # Same model quality everywhere: platforms change time, not math.
    accs = [r["best val acc"] for r in rows]
    assert max(accs) - min(accs) < 0.03


if __name__ == "__main__":
    print(format_table(build_rows(), title="Platform comparison"))
