"""Table 5: default batch size and sampling parameters of existing GNN
systems — printed from the taxonomy registry and sanity-checked against
the paper's text."""

from repro.core import format_table, table5_rows

from common import run_once


def test_table5_default_settings(benchmark):
    rows = run_once(benchmark, table5_rows)
    print()
    print(format_table(rows, title="Table 5: system default settings"))
    by_system = {r["system"]: r for r in rows}
    assert len(rows) == 7
    # §6.2's highlights: common batch sizes and the BNS-GCN 0.1 rate.
    batch_sizes = {r["batch_size"] for r in rows}
    assert {512, 1024, 2000, 6000, 8000} <= batch_sizes
    assert by_system["BNS-GCN"]["sampling_rate"] == 0.1
    assert "(25, 10)" in by_system["DistDGL"]["fanout"]


if __name__ == "__main__":
    print(format_table(table5_rows(), title="Table 5"))
