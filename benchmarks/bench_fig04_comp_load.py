"""Figure 4: computational load of different partitionings.

For each of the six methods, one epoch of distributed sampling is
metered per machine: sampling work (own batches + requests served for
other machines) plus training aggregation work.  The paper's findings:
hash is the most balanced but has the highest total load; Metis variants
reduce total load through neighbor sharing; streaming methods suffer
density-driven imbalance.
"""

import numpy as np

from repro.core import format_table, make_partitioner
from repro.partition import measure_workload
from repro.sampling import NeighborSampler

from common import LABELED, PARTITIONERS, bench_dataset, run_once

# Assertions run on the products stand-in (largest, most stable);
# the other labeled datasets are measured and printed like the paper's
# multi-dataset panels.
DATASET = "ogb-products"


def build_rows(datasets=(DATASET,)):
    sampler = NeighborSampler((10, 10))
    rows = []
    for dataset_name in datasets:
        dataset = bench_dataset(dataset_name)
        for name in PARTITIONERS:
            partitioner = make_partitioner(name)
            result = partitioner.partition(dataset.graph, 4,
                                           split=dataset.split,
                                           rng=np.random.default_rng(1))
            report = measure_workload(dataset, result, sampler,
                                      batch_size=256,
                                      rng=np.random.default_rng(2))
            loads = [m.compute_load for m in report.machines]
            rows.append({
                "dataset": dataset_name,
                "method": name,
                "m0": loads[0], "m1": loads[1],
                "m2": loads[2], "m3": loads[3],
                "total": report.total_compute,
                "imbalance": round(report.compute_imbalance, 2),
            })
    return rows


def test_fig04_computational_load(benchmark):
    rows = run_once(benchmark, lambda: build_rows(LABELED))
    print()
    print(format_table(rows, title="Figure 4: computational load"))
    by_name = {r["method"]: r for r in rows
               if r["dataset"] == DATASET}
    # Hash: most balanced, highest total load.
    hash_total = by_name["hash"]["total"]
    assert by_name["hash"]["imbalance"] <= min(
        by_name[m]["imbalance"] for m in ("metis-v", "stream-b")) + 0.02
    for metis in ("metis-v", "metis-ve", "metis-vet"):
        assert by_name[metis]["total"] < hash_total
    # Streaming pays with imbalance relative to hash.
    assert by_name["stream-b"]["imbalance"] > by_name["hash"]["imbalance"]


if __name__ == "__main__":
    print(format_table(build_rows(LABELED), title="Figure 4"))
