"""Model comparison: GCN vs GraphSAGE (the paper's two models) + GAT.

§4: "The models used in our experiments are two representative GNN
models, GCN and GraphSAGE" with hidden dim 128.  This benchmark runs
both (plus the GAT extension) through the identical data-management
pipeline, confirming the evaluation harness is model-agnostic and
recording each model's accuracy/cost point.
"""

from repro import Trainer
from repro.core import format_table

from common import bench_dataset, quick_config, run_once

DATASETS = ("ogb-arxiv", "ogb-products")
MODELS = ("gcn", "graphsage", "gat")
EPOCHS = 15


def build_rows():
    rows = []
    for dataset_name in DATASETS:
        dataset = bench_dataset(dataset_name)
        for model in MODELS:
            config = quick_config(model=model, epochs=EPOCHS,
                                  batch_size=128, fanout=(8, 8),
                                  num_workers=2, partitioner="metis-ve")
            result = Trainer(dataset, config).run()
            rows.append({
                "dataset": dataset_name,
                "model": model,
                "best val acc": round(result.best_val_accuracy, 3),
                "test acc": round(result.test_accuracy, 3),
                "epoch (sim ms)": round(
                    1e3 * result.curve.mean_epoch_seconds, 3),
            })
    return rows


def test_model_comparison(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Model comparison (GCN vs "
                                   "GraphSAGE vs GAT)"))
    for dataset_name in DATASETS:
        subset = [r for r in rows if r["dataset"] == dataset_name]
        chance = 5 * (1 / 47)
        # Every model learns far above chance.  GCN holds an edge on
        # these stand-ins: its self-in-mean aggregation smooths the
        # (deliberately noisy) planted features harder than GraphSAGE's
        # separate self path — a data property, not a harness artifact.
        assert all(r["best val acc"] > chance for r in subset)
        gcn = next(r for r in subset if r["model"] == "gcn")
        sage = next(r for r in subset if r["model"] == "graphsage")
        assert abs(gcn["best val acc"] - sage["best val acc"]) < 0.2


if __name__ == "__main__":
    print(format_table(build_rows(), title="Model comparison"))
