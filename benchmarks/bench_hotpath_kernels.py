"""Hot-path batch-preparation kernels: old vs new wall time.

The paper's Figure 2 argument — batch preparation dominates — holds for
our *measured* python time too: block assembly, aggregation-operator
construction, and evaluation re-sampling are the reproduction's real
hot paths.  This benchmark measures the perf layer's fast paths against
the retained reference implementations on one build:

* micro: fused :func:`~repro.sampling.block.build_block` (pooled id-map
  localization, packed-key ordering) vs the sort-based
  :func:`~repro.sampling.block.build_block_reference`;
* sampler: a full ``NeighborSampler.sample`` call with the fast paths
  on vs off;
* end-to-end: mean epoch wall time of a short training run with every
  perf flag on vs off (bit-identical curves; only wall time moves).

Results are written to ``BENCH_hotpath.json`` at the repo root, seeding
the repo's measured-performance trajectory.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro import Trainer, perf_overrides
from repro.core import format_table
from repro.graph.generators import power_law_graph
from repro.perf import PERF
from repro.sampling import (NeighborSampler, build_block,
                            build_block_reference)
from repro.sampling.base import draw_neighbors

from common import bench_dataset, quick_config, run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: Synthetic power-law workload for the kernel microbenchmarks.
NUM_VERTICES = 200_000
AVG_DEGREE = 16
NUM_SEEDS = 4096
FANOUT = 15


def _best_of(fn, rounds):
    best = float("inf")
    for _round in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def micro_block_assembly(rounds=20):
    """Fused vs reference ``build_block`` on one sampled edge set."""
    rng = np.random.default_rng(7)
    graph, _ = power_law_graph(NUM_VERTICES, AVG_DEGREE, rng)
    seeds = rng.choice(NUM_VERTICES, NUM_SEEDS, replace=False)
    counts = np.full(NUM_SEEDS, FANOUT, dtype=np.int64)
    edge_dst, edge_src = draw_neighbors(graph, seeds, counts, rng)

    fused = _best_of(
        lambda: build_block(seeds, edge_dst, edge_src,
                            assume_deduped=True), rounds)
    reference = _best_of(
        lambda: build_block_reference(seeds, edge_dst, edge_src), rounds)
    return {
        "edges": int(len(edge_dst)),
        "reference_ms": reference * 1e3,
        "fused_ms": fused * 1e3,
        "speedup": reference / fused,
    }


def micro_sampler(rounds=10):
    """Full 2-layer neighbor-sampling call, fast paths on vs off."""
    rng = np.random.default_rng(7)
    graph, _ = power_law_graph(NUM_VERTICES, AVG_DEGREE, rng)
    seeds = rng.choice(NUM_VERTICES, 1024, replace=False)
    sampler = NeighborSampler((15, 10))

    def fast():
        sampler.sample(graph, seeds, np.random.default_rng(1))

    def slow():
        with perf_overrides(fused_block_assembly=False):
            sampler.sample(graph, seeds, np.random.default_rng(1))

    fast_s, slow_s = _best_of(fast, rounds), _best_of(slow, rounds)
    return {"reference_ms": slow_s * 1e3, "fused_ms": fast_s * 1e3,
            "speedup": slow_s / fast_s}


def end_to_end(epochs=6):
    """Mean epoch wall time of a short run, all perf flags on vs off.

    The synthetic stand-in datasets are power-law graphs, so this is
    the paper's workload shape; simulated `epoch_seconds` are identical
    between the two runs (verified by the equivalence tests) — only
    measured wall time differs.
    """
    dataset = bench_dataset("reddit", scale=0.3)
    config = quick_config(epochs=epochs, num_workers=2,
                          partitioner="hash", batch_size=512)

    def run():
        return Trainer(dataset, config).run()

    before = PERF.snapshot()
    fast = run()
    perf_delta = PERF.delta(before)
    with perf_overrides(fused_block_assembly=False,
                        memoize_aggregation=False,
                        eval_subgraph_cache=False):
        slow = run()

    fast_wall = fast.total_wall_seconds / len(fast.curve.wall_seconds)
    slow_wall = slow.total_wall_seconds / len(slow.curve.wall_seconds)
    assert fast.curve.losses == slow.curve.losses, \
        "fast path changed the math"
    assert fast.curve.epoch_seconds == slow.curve.epoch_seconds
    return {
        "epochs": epochs,
        "reference_ms": slow_wall * 1e3,
        "fused_ms": fast_wall * 1e3,
        "speedup": slow_wall / fast_wall,
        "eval_subgraph_hits": perf_delta.get("eval_subgraph_hits", 0),
        "agg_matrix_hits": perf_delta.get("agg_matrix_hits", 0),
    }


def build_results():
    results = {
        "block_assembly": micro_block_assembly(),
        "sampler_path": micro_sampler(),
        "end_to_end": end_to_end(),
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2,
                                      sort_keys=True) + "\n")
    return results


def report(results):
    rows = []
    for stage, stats in results.items():
        row = {"stage": stage, "speedup": round(stats["speedup"], 2)}
        for key, value in stats.items():
            if key.endswith("_ms") or key.endswith("_s"):
                row[key] = round(value, 3)
        rows.append(row)
    return format_table(rows, title="Hot-path kernels: old vs new")


def test_hotpath_kernels(benchmark):
    results = run_once(benchmark, build_results)
    print()
    print(report(results))
    # The ISSUE's acceptance bar: >= 2x on the block-assembly kernel
    # and a measurable end-to-end epoch wall-time win.
    assert results["block_assembly"]["speedup"] >= 2.0
    assert results["sampler_path"]["speedup"] > 1.0
    assert results["end_to_end"]["speedup"] > 1.0


if __name__ == "__main__":
    print(report(build_results()))
    print(f"wrote {RESULT_PATH}")
