"""Sharded multi-replica serving: scaling, locality, elasticity.

``bench_serve_latency.py`` measures one serving node; this benchmark
scales the same workload out across a partitioned fleet, which is
where the paper's data-management axes meet serving for real: the
partitioner decides *where* every feature/embedding row lives, the
router decides *where* every request runs, and the gap between the
two is remote traffic billed over the cluster network.

* **scaling sweep**: p50/p95/p99 and throughput vs replica count
  {1, 2, 4, 8} under a Zipf-skewed open-loop stream at 100x the
  single-server benchmark's base rate — one replica saturates, so the
  tail must *strictly improve* from 1 to 4 replicas;
* **locality sweep**: routing locality (fraction of requests answered
  with zero remote rows) and remote-row fraction per partitioner
  (hash vs Metis-V/VE/VET) — edge-cut quality read out as serving
  network traffic;
* **elasticity**: a queue-depth autoscaling run (active replica set
  follows load) and a crash-failover run (dead replica's queue
  re-routed after the retry policy's detection timeout).

Before any timing is reported, the fleet's predictions are verified
**bit-identical** to the single-server ``ServeEngine`` on the same
trace (precomputed mode evaluates row-wise, so answers are invariant
to how routing re-batched the requests).

Results are written to ``BENCH_fleet.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.core import format_table
from repro.fleet import run_fleet_bench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def build_results():
    report = run_fleet_bench(
        dataset="ogb-arxiv", scale=0.3, model="gcn", train_epochs=2,
        base_rate=2000.0, rate_multiplier=100.0, num_requests=2000,
        skew=0.8, replica_counts=(1, 2, 4, 8), partitioner="metis-v",
        locality_partitioners=("hash", "metis-v", "metis-ve",
                               "metis-vet"),
        seed=0)
    RESULT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    return report


def report_table(report):
    rows = []
    for result in report["scaling"]:
        rows.append({
            "replicas": result["num_replicas"],
            "p50 (ms)": round(1e3 * result["latency_p50"], 3),
            "p95 (ms)": round(1e3 * result["latency_p95"], 3),
            "p99 (ms)": round(1e3 * result["latency_p99"], 3),
            "req/s": round(result["throughput"], 1),
            "locality": round(result["routing_locality"], 3),
            "hot hit": round(result["hot_hit_rate"], 3),
            "warm hit": round(result["warm_hit_rate"], 3),
        })
    title = (f"Fleet scaling ({report['dataset']}, "
             f"{report['partitioner']}, "
             f"rate={report['load']['rate']:g}/s)")
    scaling = format_table(rows, title=title)

    rows = []
    for result in report["locality"]:
        rows.append({
            "partitioner": result["partitioner"],
            "mode": result["mode"],
            "locality": round(result["routing_locality"], 3),
            "remote rows": round(result["remote_row_fraction"], 3),
            "remote (ms)": round(1e3 * result["remote_seconds"], 2),
            "p99 (ms)": round(1e3 * result["latency_p99"], 3),
        })
    locality = format_table(
        rows, title=f"Routing locality "
                    f"(N={report['locality'][0]['num_replicas']})")
    return scaling + "\n\n" + locality


def test_fleet(benchmark):
    from common import run_once

    report = run_once(benchmark, build_results)
    print()
    print(report_table(report))
    # The ISSUE's acceptance bar.
    assert report["invariant_exact_match"] is True
    assert report["p99_improves_1_to_4"] is True
    counts = [r["num_replicas"] for r in report["scaling"]]
    assert counts == [1, 2, 4, 8]
    p99 = {r["num_replicas"]: r["latency_p99"]
           for r in report["scaling"]}
    assert p99[4] < p99[1]
    rate = report["load"]["rate"]
    assert rate >= 10 * report["load"]["base_rate"]
    for result in report["scaling"]:
        assert result["latency_p50"] is not None
        assert {"hot_hit_rate", "warm_hit_rate"} <= result.keys()
    # Locality covers every partitioner in both modes, and a
    # better-than-hash cut shows up as fewer remote rows (sampled).
    sampled = {r["partitioner"]: r["remote_row_fraction"]
               for r in report["locality"] if r["mode"] == "sampled"}
    assert set(sampled) == {"hash", "metis-v", "metis-ve", "metis-vet"}
    assert min(v for k, v in sampled.items() if k != "hash") \
        < sampled["hash"]
    # Elasticity demos actually exercised their machinery.
    assert report["failover"]["failovers"] > 0
    assert report["failover"]["completed"] > 0


if __name__ == "__main__":
    import sys

    from repro.perf import FLAGS

    if "--sanitize" in sys.argv[1:]:
        FLAGS.sanitize = True
    print(report_table(build_results()))
    print(f"wrote {RESULT_PATH}")
