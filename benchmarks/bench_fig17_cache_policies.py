"""Figure 17: performance of GPU caching policies when varying the
cache ratio.

Degree-based (PaGraph) vs pre-sampling-based (GNNLab) caching on a
power-law graph (Amazon stand-in) and a flat-degree graph (OGB-Papers
stand-in).  Paper findings (§7.3.3): on power-law graphs the policies
are comparable (hubs dominate access anyway); on the non-power-law graph
pre-sampling wins clearly because degree stops predicting access.

Access skew on the flat graph comes from a small hot seed set — the
papers100M regime where one epoch touches a small working set of the
graph (see DESIGN.md).
"""

import numpy as np

from repro.core import format_table
from repro.sampling import NeighborSampler
from repro.transfer import (DEFAULT_SPEC, BatchStats, DegreeCache,
                            PreSampleCache, ZeroCopy)

from common import bench_dataset, run_once

DATASETS = ("amazon", "ogb-papers")
RATIOS = (0.1, 0.2, 0.4)
SEED_FRACTION = 0.02
ROUNDS = 4


def epoch_transfer_seconds(dataset, cache, sampler, seeds):
    """Simulated transfer time of a few batches under a cache."""
    method = ZeroCopy()
    rng = np.random.default_rng(3)
    total = 0.0
    for _round in range(ROUNDS):
        batch = rng.permutation(seeds)[:400]
        subgraph = sampler.sample(dataset.graph, batch, rng)
        stats = BatchStats.from_subgraph(subgraph, dataset)
        total += method.transfer(stats, DEFAULT_SPEC,
                                 cache=cache).total_seconds
    return total


def build_rows():
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        sampler = NeighborSampler((10, 5))
        seeds = dataset.train_ids[:max(
            16, int(SEED_FRACTION * dataset.num_vertices))]
        baseline = epoch_transfer_seconds(dataset, None, sampler, seeds)
        for ratio in RATIOS:
            degree = DegreeCache(dataset.graph, ratio)
            presample = PreSampleCache(dataset.graph, sampler, seeds,
                                       ratio,
                                       rng=np.random.default_rng(1))
            degree_s = epoch_transfer_seconds(dataset, degree, sampler,
                                              seeds)
            presample_s = epoch_transfer_seconds(dataset, presample,
                                                 sampler, seeds)
            rows.append({
                "dataset": name, "cache ratio": ratio,
                "no cache (ms)": round(1e3 * baseline, 3),
                "degree (ms)": round(1e3 * degree_s, 3),
                "presample (ms)": round(1e3 * presample_s, 3),
                "degree hit rate": round(degree.hit_rate, 3),
                "presample hit rate": round(presample.hit_rate, 3),
            })
    return rows


def test_fig17_cache_policies(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(rows, title="Figure 17: caching policies"))
    for row in rows:
        # Any cache beats no cache.
        assert row["degree (ms)"] <= row["no cache (ms)"]
        assert row["presample (ms)"] <= row["no cache (ms)"]
    flat = [r for r in rows if r["dataset"] == "ogb-papers"]
    skewed = [r for r in rows if r["dataset"] == "amazon"]
    # Flat graph: pre-sampling clearly beats degree caching.
    assert all(r["presample (ms)"] < r["degree (ms)"] for r in flat)
    assert any(r["presample hit rate"] > r["degree hit rate"] + 0.1
               for r in flat)
    # Power-law graph: the two are comparable (within 25%).
    for r in skewed:
        ratio = r["presample (ms)"] / max(r["degree (ms)"], 1e-12)
        assert 0.6 < ratio < 1.35


if __name__ == "__main__":
    print(format_table(build_rows(), title="Figure 17"))
