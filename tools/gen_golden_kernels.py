#!/usr/bin/env python
"""Regenerate the kernel-refactor golden fingerprints.

``tests/golden/kernel_refactor.json`` pins the exact (bit-level)
numerical behaviour of the aggregation paths: training curves for the
sampled trainer, a seeded GAT forward/backward, and the layer-wise
serving tables that the fleet answers from.  The kernel-registry
conformance tests compare the current tree against these fingerprints
with ``atol=0``, so a refactor of the aggregation seam must reproduce
the recorded runs bit-for-bit under the reference backend.

Run from the repo root::

    PYTHONPATH=src python tools/gen_golden_kernels.py

Only regenerate the file for an *intentional* numerical change, and
say so in the commit message.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro import Trainer, TrainingConfig, load_dataset
from repro.nn import build_model
from repro.nn.loss import softmax_cross_entropy
from repro.sampling import NeighborSampler
from repro.serve import LayerwiseEmbeddings

OUT = Path(__file__).resolve().parents[1] / "tests" / "golden" \
    / "kernel_refactor.json"


def _digest(array):
    """sha256 of an array's raw little-endian bytes (dtype-tagged)."""
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - LE platforms
        array = array.astype(array.dtype.newbyteorder("<"))
    return f"{array.dtype.name}:{hashlib.sha256(array.tobytes()).hexdigest()}"


def training_curves():
    """Sampled-trainer loss/accuracy curves (the hot path end to end)."""
    dataset = load_dataset("ogb-arxiv", scale=0.05)
    out = {}
    for model in ("gcn", "graphsage"):
        config = TrainingConfig(model=model, epochs=3, batch_size=128,
                                fanout=(4, 4), num_workers=2,
                                partitioner="hash", seed=7)
        result = Trainer(dataset, config).run()
        out[model] = {
            "losses": [float(v) for v in result.curve.losses],
            "val_accuracies": [float(v)
                               for v in result.curve.val_accuracies],
            "test_accuracy": float(result.test_accuracy),
        }
    return out


def gat_forward_backward():
    """Seeded GAT forward logits + parameter gradients on one block
    stack (exercises the SDDMM/edge-softmax/weighted-SpMM path)."""
    dataset = load_dataset("ogb-arxiv", scale=0.05)
    sampler = NeighborSampler((4, 4))
    seeds = dataset.train_ids[:24]
    subgraph = sampler.sample(dataset.graph, seeds,
                              np.random.default_rng(5))
    model = build_model("gat", dataset.feature_dim, dataset.num_classes,
                        rng=np.random.default_rng(11))
    model.eval()  # no dropout: the forward must be a pure function
    logits = model.forward(subgraph,
                           dataset.features[subgraph.input_nodes])
    loss = softmax_cross_entropy(logits, dataset.labels[seeds])
    loss.backward()
    grads = np.concatenate([p.grad.ravel() for p in model.parameters()])
    return {
        "logits_sha256": _digest(logits.data),
        "loss": float(loss.item()),
        "grads_sha256": _digest(grads),
        "logits_head": [float(v) for v in logits.data.ravel()[:8]],
    }


def serving_tables():
    """Layer-wise embedding tables and the three serving read paths
    (``serve`` single-server and the ``fleet`` row-wise contract)."""
    dataset = load_dataset("ogb-arxiv", scale=0.1)
    out = {}
    for model_name in ("gcn", "graphsage"):
        model = build_model(model_name, dataset.feature_dim,
                            dataset.num_classes,
                            rng=np.random.default_rng(3))
        embeddings = LayerwiseEmbeddings(model, dataset.graph,
                                         dataset.features)
        probe = dataset.test_ids[:32]
        logits = embeddings.logits(probe)
        rowwise = embeddings.rowwise_logits(probe[:8])
        ondemand, stats = embeddings.ondemand_logits(probe[:8])
        out[model_name] = {
            "table_sha256": _digest(embeddings.table),
            "logits_sha256": _digest(logits),
            "rowwise_sha256": _digest(rowwise),
            "ondemand_sha256": _digest(ondemand),
            "ondemand_edges": int(stats.edges),
            "logits_head": [float(v) for v in logits.ravel()[:8]],
        }
    return out


def main():
    golden = {
        "_comment": "Bit-level fingerprints of the aggregation paths; "
                    "see tools/gen_golden_kernels.py.",
        "training": training_curves(),
        "gat": gat_forward_backward(),
        "serving": serving_tables(),
    }
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
